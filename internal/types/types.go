// Package types implements the PSketch type checker. Besides checking,
// it resolves every {| ... |} generator to its type-valid choice list
// (ill-typed strings such as null.next are silently dropped, as in the
// paper) and annotates every expression with its type.
package types

import (
	"fmt"
	"strings"

	"psketch/internal/ast"
)

// Base enumerates the value categories of the bounded machine.
type Base int

// The base types. bit and bool are identified (a bit is a boolean);
// bit[N] is an array of booleans.
const (
	Invalid Base = iota
	Void
	Int
	Bool
	Ref
)

// Type is a PSketch type: a scalar base or a fixed-length array of it.
type Type struct {
	Base   Base
	Struct string // struct name when Base == Ref
	Len    int    // > 0 => array
}

// Common scalar types.
var (
	TVoid = Type{Base: Void}
	TInt  = Type{Base: Int}
	TBool = Type{Base: Bool}
)

// RefTo returns the reference type for a struct.
func RefTo(name string) Type { return Type{Base: Ref, Struct: name} }

// ArrayOf returns the n-element array of a scalar type.
func ArrayOf(elem Type, n int) Type {
	elem.Len = n
	return elem
}

// Elem returns the scalar element type of an array type.
func (t Type) Elem() Type {
	t.Len = 0
	return t
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t.Len > 0 }

// Equal reports type identity. A null literal is given the wildcard
// reference type Ref{""} which equals any reference type.
func (t Type) Equal(o Type) bool {
	if t.Base != o.Base || t.Len != o.Len {
		return false
	}
	if t.Base == Ref {
		return t.Struct == o.Struct || t.Struct == "" || o.Struct == ""
	}
	return true
}

func (t Type) String() string {
	var b string
	switch t.Base {
	case Void:
		return "void"
	case Int:
		b = "int"
	case Bool:
		b = "bool"
	case Ref:
		b = t.Struct
		if b == "" {
			b = "null"
		}
	default:
		b = "invalid"
	}
	if t.Len > 0 {
		return fmt.Sprintf("%s[%d]", b, t.Len)
	}
	return b
}

// FieldInfo describes one struct field.
type FieldInfo struct {
	Name    string
	Type    Type
	Default ast.Expr // nil => constructor argument
}

// StructInfo is the resolved form of a struct declaration. Every struct
// carries an implicit int field "_lock" (owner pid; 0 = free) so that
// lock(x)/unlock(x) work on any heap node, per Figure 7.
type StructInfo struct {
	Name   string
	Fields []FieldInfo
}

// Field returns the field with the given name and its index, or -1.
func (s *StructInfo) Field(name string) (FieldInfo, int) {
	for i, f := range s.Fields {
		if f.Name == name {
			return f, i
		}
	}
	return FieldInfo{}, -1
}

// CtorFields returns the indices of fields without defaults, in order.
func (s *StructInfo) CtorFields() []int {
	var idx []int
	for i, f := range s.Fields {
		if f.Default == nil && f.Name != LockField {
			idx = append(idx, i)
		}
	}
	return idx
}

// LockField is the implicit per-node lock owner field.
const LockField = "_lock"

// FuncInfo is the resolved signature of a function.
type FuncInfo struct {
	Decl   *ast.FuncDecl
	Ret    Type
	Params []Type
}

// Info is the output of the checker.
type Info struct {
	Prog    *ast.Program
	Structs map[string]*StructInfo
	Funcs   map[string]*FuncInfo
	Types   map[ast.Expr]Type
}

// TypeOf returns the resolved type of an expression.
func (in *Info) TypeOf(e ast.Expr) Type { return in.Types[e] }

// Check type-checks a parsed program.
func Check(prog *ast.Program) (info *Info, err error) {
	c := &checker{
		info: &Info{
			Prog:    prog,
			Structs: map[string]*StructInfo{},
			Funcs:   map[string]*FuncInfo{},
			Types:   map[ast.Expr]Type{},
		},
	}
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(checkError); ok {
				info, err = nil, ce.err
				return
			}
			panic(r)
		}
	}()
	c.collect()
	c.checkAll()
	return c.info, nil
}

type checkError struct{ err error }

type checker struct {
	info    *Info
	globals map[string]Type
	cur     *FuncInfo // function being checked
	inFork  bool
}

func (c *checker) failf(n ast.Node, format string, args ...any) {
	pos := ""
	if n != nil {
		pos = n.Pos().String() + ": "
	}
	panic(checkError{fmt.Errorf("%s%s", pos, fmt.Sprintf(format, args...))})
}

// resolveType converts a syntactic type to a semantic one.
func (c *checker) resolveType(t *ast.TypeExpr) Type {
	if t == nil {
		return TVoid
	}
	var base Type
	switch t.Name {
	case "int":
		base = TInt
	case "bool", "bit":
		base = TBool
	case "void":
		if t.ArrayLen > 0 {
			c.failf(t, "void cannot be an array")
		}
		return TVoid
	case "Object":
		c.failf(t, "use a struct type instead of Object")
	default:
		if _, ok := c.info.Structs[t.Name]; !ok {
			c.failf(t, "unknown type %s", t.Name)
		}
		base = RefTo(t.Name)
	}
	if t.ArrayLen > 0 {
		return ArrayOf(base, t.ArrayLen)
	}
	return base
}

// collect registers struct and function signatures.
func (c *checker) collect() {
	for _, s := range c.info.Prog.Structs {
		if _, dup := c.info.Structs[s.Name]; dup {
			c.failf(s, "duplicate struct %s", s.Name)
		}
		c.info.Structs[s.Name] = &StructInfo{Name: s.Name}
	}
	for _, s := range c.info.Prog.Structs {
		si := c.info.Structs[s.Name]
		for _, f := range s.Fields {
			if _, i := si.Field(f.Name); i >= 0 {
				c.failf(f, "duplicate field %s.%s", s.Name, f.Name)
			}
			si.Fields = append(si.Fields, FieldInfo{Name: f.Name, Type: c.resolveType(f.Type), Default: f.Default})
		}
		si.Fields = append(si.Fields, FieldInfo{Name: LockField, Type: TInt, Default: &ast.IntLit{Val: 0}})
	}
	for _, f := range c.info.Prog.Funcs {
		if _, dup := c.info.Funcs[f.Name]; dup {
			c.failf(f, "duplicate function %s", f.Name)
		}
		fi := &FuncInfo{Decl: f, Ret: c.resolveType(f.Ret)}
		for _, p := range f.Params {
			fi.Params = append(fi.Params, c.resolveType(p.Type))
		}
		c.info.Funcs[f.Name] = fi
	}
	c.globals = map[string]Type{}
	for _, g := range c.info.Prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			c.failf(g, "duplicate global %s", g.Name)
		}
		c.globals[g.Name] = c.resolveType(g.Type)
	}
}

// scope is a lexical scope of local variables.
type scope struct {
	parent *scope
	vars   map[string]Type
}

func (s *scope) lookup(name string) (Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

func (s *scope) child() *scope { return &scope{parent: s, vars: map[string]Type{}} }

func (c *checker) checkAll() {
	// Check struct field defaults (globals scope only).
	for _, s := range c.info.Prog.Structs {
		si := c.info.Structs[s.Name]
		for i := range si.Fields {
			f := &si.Fields[i]
			if f.Default != nil {
				want := f.Type
				got := c.checkExpr(f.Default, &want, &scope{vars: map[string]Type{}})
				if !got.Equal(f.Type) {
					c.failf(f.Default, "field %s.%s default has type %s, want %s", s.Name, f.Name, got, f.Type)
				}
			}
		}
	}
	for _, g := range c.info.Prog.Globals {
		if g.Init != nil {
			want := c.globals[g.Name]
			got := c.checkExpr(g.Init, &want, &scope{vars: map[string]Type{}})
			if !c.assignable(got, want, g.Init) {
				c.failf(g, "global %s initializer has type %s, want %s", g.Name, got, want)
			}
		}
	}
	for _, f := range c.info.Prog.Funcs {
		c.checkFunc(c.info.Funcs[f.Name])
	}
}

func (c *checker) checkFunc(fi *FuncInfo) {
	f := fi.Decl
	if f.Implements != "" {
		spec, ok := c.info.Funcs[f.Implements]
		if !ok {
			c.failf(f, "function %s implements unknown spec %s", f.Name, f.Implements)
		}
		if !fi.Ret.Equal(spec.Ret) || len(fi.Params) != len(spec.Params) {
			c.failf(f, "signature of %s does not match spec %s", f.Name, f.Implements)
		}
		for i := range fi.Params {
			if !fi.Params[i].Equal(spec.Params[i]) {
				c.failf(f, "parameter %d of %s does not match spec %s", i, f.Name, f.Implements)
			}
		}
	}
	c.cur = fi
	c.inFork = false
	sc := &scope{vars: map[string]Type{}}
	for i, p := range f.Params {
		if _, dup := sc.vars[p.Name]; dup {
			c.failf(p, "duplicate parameter %s", p.Name)
		}
		sc.vars[p.Name] = fi.Params[i]
	}
	c.checkBlock(f.Body, sc)
	c.cur = nil
}

func (c *checker) checkBlock(b *ast.Block, sc *scope) {
	inner := sc.child()
	for _, s := range b.Stmts {
		c.checkStmt(s, inner)
	}
}

func (c *checker) checkStmt(s ast.Stmt, sc *scope) {
	switch st := s.(type) {
	case *ast.Block:
		c.checkBlock(st, sc)
	case *ast.DeclStmt:
		t := c.resolveType(st.Type)
		if t.Base == Void {
			c.failf(st, "variable %s cannot be void", st.Name)
		}
		if st.Init != nil {
			got := c.checkExpr(st.Init, &t, sc)
			if !c.assignable(got, t, st.Init) {
				c.failf(st, "cannot initialize %s (%s) with %s", st.Name, t, got)
			}
		}
		if _, dup := sc.vars[st.Name]; dup {
			c.failf(st, "redeclaration of %s", st.Name)
		}
		sc.vars[st.Name] = t
	case *ast.AssignStmt:
		lt := c.checkLValue(st.LHS, sc)
		rhsWant := lt
		if lt.IsArray() {
			rhsWant = lt.Elem()
			if _, isLit := st.RHS.(*ast.IntLit); !isLit {
				rhsWant = lt
			}
		}
		got := c.checkExpr(st.RHS, &rhsWant, sc)
		if !c.assignable(got, lt, st.RHS) {
			c.failf(st, "cannot assign %s to %s", got, lt)
		}
	case *ast.IfStmt:
		want := TBool
		if got := c.checkExpr(st.Cond, &want, sc); !got.Equal(TBool) {
			c.failf(st.Cond, "if condition must be bool, got %s", got)
		}
		c.checkBlock(st.Then, sc)
		if st.Else != nil {
			c.checkStmt(st.Else, sc)
		}
	case *ast.WhileStmt:
		want := TBool
		if got := c.checkExpr(st.Cond, &want, sc); !got.Equal(TBool) {
			c.failf(st.Cond, "while condition must be bool, got %s", got)
		}
		c.checkBlock(st.Body, sc)
	case *ast.ReturnStmt:
		if c.cur == nil {
			c.failf(st, "return outside function")
		}
		if st.Val == nil {
			if c.cur.Ret.Base != Void {
				c.failf(st, "missing return value (function returns %s)", c.cur.Ret)
			}
			return
		}
		want := c.cur.Ret
		got := c.checkExpr(st.Val, &want, sc)
		if !got.Equal(c.cur.Ret) {
			c.failf(st, "return type %s, function returns %s", got, c.cur.Ret)
		}
	case *ast.AssertStmt:
		want := TBool
		if got := c.checkExpr(st.Cond, &want, sc); !got.Equal(TBool) {
			c.failf(st.Cond, "assert condition must be bool, got %s", got)
		}
	case *ast.AtomicStmt:
		if st.Cond != nil {
			want := TBool
			if got := c.checkExpr(st.Cond, &want, sc); !got.Equal(TBool) {
				c.failf(st.Cond, "atomic condition must be bool, got %s", got)
			}
		}
		c.checkBlock(st.Body, sc)
	case *ast.ForkStmt:
		if !c.cur.Decl.Harness {
			c.failf(st, "fork is only allowed in a harness function")
		}
		if c.inFork {
			c.failf(st, "nested fork is not supported")
		}
		want := TInt
		if got := c.checkExpr(st.N, &want, sc); !got.Equal(TInt) {
			c.failf(st.N, "fork thread count must be int, got %s", got)
		}
		inner := sc.child()
		inner.vars[st.Var] = TInt
		c.inFork = true
		c.checkBlock(st.Body, inner)
		c.inFork = false
	case *ast.ReorderStmt:
		c.checkBlock(st.Body, sc)
	case *ast.RepeatStmt:
		want := TInt
		if got := c.checkExpr(st.Count, &want, sc); !got.Equal(TInt) {
			c.failf(st.Count, "repeat count must be int, got %s", got)
		}
		c.checkStmt(st.Body, sc.child())
	case *ast.LockStmt:
		t := c.checkExpr(st.Target, nil, sc)
		if t.Base != Ref || t.IsArray() {
			c.failf(st, "lock/unlock target must be a struct reference, got %s", t)
		}
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			c.failf(st, "expression statement must be a call")
		}
		c.checkExpr(call, nil, sc)
	default:
		c.failf(s, "unhandled statement %T", s)
	}
}

// assignable reports whether a value of type got (produced by rhs) can
// be assigned to a location of type want. Besides type identity, a
// scalar literal may fill an entire array ("int[16] T = 0;" as in §3).
func (c *checker) assignable(got, want Type, rhs ast.Expr) bool {
	if got.Equal(want) {
		return true
	}
	if want.IsArray() && got.Equal(want.Elem()) {
		switch rhs.(type) {
		case *ast.IntLit, *ast.BoolLit, *ast.NullLit:
			return true
		}
	}
	return false
}

// checkLValue checks that e is assignable and returns its type.
func (c *checker) checkLValue(e ast.Expr, sc *scope) Type {
	switch x := e.(type) {
	case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr, *ast.SliceExpr:
		return c.checkExpr(e, nil, sc)
	case *ast.Regen:
		t := c.checkExpr(e, nil, sc)
		for _, ch := range x.Choices {
			switch ch.(type) {
			case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr:
			default:
				c.failf(e, "generator used as assignment target has non-lvalue choice")
			}
		}
		return t
	}
	c.failf(e, "not an assignable location")
	return Type{}
}

// ExprString renders an expression compactly for diagnostics and for
// the candidate pretty-printer.
func ExprString(e ast.Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		return x.Name
	case *ast.IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *ast.BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *ast.NullLit:
		return "null"
	case *ast.BitsLit:
		return "\"" + x.Text + "\""
	case *ast.Hole:
		if x.Width > 0 {
			return fmt.Sprintf("??(%d)", x.Width)
		}
		return "??"
	case *ast.Regen:
		return "{| " + x.Text + " |}"
	case *ast.Unary:
		return x.Op.String() + parenthesize(x.X)
	case *ast.Binary:
		return parenthesize(x.X) + " " + x.Op.String() + " " + parenthesize(x.Y)
	case *ast.FieldExpr:
		return parenthesize(x.X) + "." + x.Name
	case *ast.IndexExpr:
		return parenthesize(x.X) + "[" + ExprString(x.Index) + "]"
	case *ast.SliceExpr:
		return fmt.Sprintf("%s[%s::%d]", parenthesize(x.X), ExprString(x.Start), x.Len)
	case *ast.CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Fun + "(" + strings.Join(args, ", ") + ")"
	case *ast.CastExpr:
		return "(" + x.Type.String() + ") " + parenthesize(x.X)
	case *ast.NewExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return "new " + x.Type + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("<%T>", e)
}

func parenthesize(e ast.Expr) string {
	switch e.(type) {
	case *ast.Binary:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
