package types

import (
	"strings"
	"testing"

	"psketch/internal/ast"
	"psketch/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func mustFail(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestWellTyped(t *testing.T) {
	mustCheck(t, `
struct Node { Node next = null; int key; }
Node head;
int[4] xs;
bool flag;

void f(int k) {
	Node n = new Node(k);
	n.next = head;
	head = n;
	xs[k] = n.key + 1;
	flag = n.next == null || k < 3;
	if (flag) { assert xs[0] == 0; }
	while (k > 0) { k = k - 1; }
}
`)
}

func TestTypeErrors(t *testing.T) {
	cases := map[string]string{
		"void f() { x = 1; }":                             "undefined variable",
		"void f() { int x = true; }":                      "cannot initialize",
		"void f(int x) { if (x) { } }":                    "must be bool",
		"void f(int x) { bool b = x + true; }":            "int operands",
		"struct S { int v; } void f(S s) { s.w = 1; }":    "no field",
		"void f(int x) { x[0] = 1; }":                     "non-array",
		"void f() { g(); }":                               "unknown function",
		"int f() { return; }":                             "missing return value",
		"void f() { fork (i; 2) { } }":                    "harness",
		"void f() { return 1 == true; }":                  "cannot compare",
		"struct S { int v; } void f() { S s = new S(); }": "expects 1 argument",
	}
	for src, frag := range cases {
		mustFail(t, src, frag)
	}
}

func TestNullComparableWithAnyRef(t *testing.T) {
	mustCheck(t, `
struct A { int v; }
struct B { int v; }
void f(A a, B b) {
	assert a != null;
	assert null == b || true;
	a = null;
}
`)
}

func TestImplicitLockField(t *testing.T) {
	info := mustCheck(t, `struct S { int v; } void f(S s) { assert s._lock == 0; }`)
	si := info.Structs["S"]
	if _, i := si.Field(LockField); i < 0 {
		t.Fatal("implicit lock field missing")
	}
	// The lock field is not a constructor argument.
	if len(si.CtorFields()) != 1 {
		t.Fatalf("ctor fields: %v", si.CtorFields())
	}
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, `
struct N { N next = null; int taken = 0; }
N head;
int c;
void f() {
	N old = AtomicSwap(head, null);
	int t = AtomicSwap(head.taken, 1);
	bool ok = CAS(c, 0, 1);
	int v = AtomicReadAndDecr(c);
	v = AtomicReadAndIncr(c);
	old = old;
	t = t;
	ok = ok;
}
`)
	mustFail(t, "void f() { int x = AtomicSwap(1, 2); }", "assignable location")
	mustFail(t, "int c; void f() { bool b = CAS(c, 0); }", "expects 3")
	mustFail(t, "bool c; void f() { int v = AtomicReadAndDecr(c); }", "must be int")
}

func TestRegenChoiceFiltering(t *testing.T) {
	// null.next is ill-typed and must be silently dropped (the paper's
	// semantics for generators).
	info := mustCheck(t, `
struct N { N next = null; }
N a;
void f() {
	N x = {| (a|null)(.next)? |};
	x = x;
}
`)
	var choices int
	for _, fn := range info.Prog.Funcs {
		ast.WalkExprs(fn.Body, func(e ast.Expr) {
			if r, ok := e.(*ast.Regen); ok {
				choices = len(r.Choices)
			}
		})
	}
	// a, a.next, null — but not null.next.
	if choices != 3 {
		t.Fatalf("choices = %d, want 3", choices)
	}
}

func TestRegenNoValidChoice(t *testing.T) {
	mustFail(t, `void f(int x) { bool b = {| y | z |}; }`, "generator")
}

func TestHoleContexts(t *testing.T) {
	info := mustCheck(t, `
void f(int x) {
	int a = ??;
	bool b = ??;
	bit[4] v = ??;
	a = a; b = b; v[0] = v[0];
}
`)
	var kinds []Type
	for _, fn := range info.Prog.Funcs {
		ast.WalkExprs(fn.Body, func(e ast.Expr) {
			if h, ok := e.(*ast.Hole); ok {
				kinds = append(kinds, info.TypeOf(h))
			}
		})
	}
	if len(kinds) != 3 {
		t.Fatalf("holes: %d", len(kinds))
	}
	if !kinds[0].Equal(TInt) || !kinds[1].Equal(TBool) || !kinds[2].Equal(ArrayOf(TBool, 4)) {
		t.Fatalf("kinds: %v", kinds)
	}
	mustFail(t, "struct S { int v; } void f() { S s = ??; }", "pointer")
}

func TestArrayLiteralFill(t *testing.T) {
	mustCheck(t, `void f() { int[8] xs = 0; bool[2] bs = false; xs[0] = 1; bs[0] = true; }`)
	mustFail(t, `void f() { int[8] xs = 1 + 1; }`, "cannot initialize")
}

func TestScopes(t *testing.T) {
	mustCheck(t, `void f() { if (true) { int x = 1; x = x; } if (true) { int x = 2; x = x; } }`)
	mustFail(t, `void f() { { int x = 1; x = x; } x = 2; }`, "undefined variable")
	mustFail(t, `void f() { int x = 1; int x = 2; }`, "redeclaration")
}

func TestExprString(t *testing.T) {
	e, err := parser.ParseExprString("a.b[1 + c] == null && !d")
	if err != nil {
		t.Fatal(err)
	}
	got := ExprString(e)
	if got != "a.b[1 + c] == null && !d" && !strings.Contains(got, "a.b") {
		t.Fatalf("got %q", got)
	}
}

func TestImplementsSignatureChecks(t *testing.T) {
	mustFail(t, `
int spec(int x) { return x; }
bool f(int x) implements spec { return true; }
`, "signature")
	mustFail(t, `
int spec(int x, int y) { return x; }
int f(int x) implements spec { return x; }
`, "signature")
	mustFail(t, `
int f(int x) implements nosuch { return x; }
`, "unknown spec")
}

func TestStructChecks(t *testing.T) {
	mustFail(t, `struct S { int v; } struct S { int w; }`, "duplicate struct")
	mustFail(t, `struct S { int v; int v; }`, "duplicate field")
	mustFail(t, `void f() { Unknown u = null; u = u; }`, "unknown type")
	mustFail(t, `struct S { int v = true; }`, "default")
}

func TestMoreStatements(t *testing.T) {
	mustCheck(t, `
struct S { int v = 0; }
S obj;
harness void Main() {
	obj = new S();
	fork (i; 2) {
		lock(obj);
		atomic (obj.v == 0) { obj.v = 1; }
		unlock(obj);
	}
	repeat (2) obj.v = obj.v + 1;
	reorder { obj.v = 1; obj.v = 2; }
}
`)
	mustFail(t, `harness void Main() { fork (i; 2) { fork (j; 2) { } } }`, "nested fork")
	mustFail(t, `void f(int x) { lock(x); }`, "struct reference")
	mustFail(t, `harness void Main() { repeat (true) { } fork (i; 1) { } }`, "int")
	mustFail(t, `void f() { 3; }`, "must be a call")
	mustFail(t, `void f() { while (3) { } }`, "bool")
	mustFail(t, `void f() { atomic (3) { } }`, "bool")
	mustFail(t, `void f() { assert 3; }`, "bool")
	mustFail(t, `int f() { return true; }`, "return type")
	mustFail(t, `void f() { return 3; }`, "")
}

func TestCallChecks(t *testing.T) {
	mustFail(t, `
void g(int x) { }
void f() { g(); }
`, "expects 1")
	mustFail(t, `
void g(bool x) { }
void f() { g(3); }
`, "argument 0")
	mustFail(t, `
harness void Main() { fork (i; 1) { } }
void f() { Main(); }
`, "harness")
}

func TestCastAndSliceChecks(t *testing.T) {
	mustCheck(t, `void f(bit[4] b) { int x = (int) b[0::2]; x = (int) b[3]; }`)
	mustFail(t, `void f(int x) { int y = (int) x; }`, "bit")
	mustFail(t, `void f(bit[4] b) { bit[8] c = b[0::8]; }`, "slice")
	mustFail(t, `void f(bit[4] b) { bool c = b[true]; }`, "index")
}

func TestLValueChecks(t *testing.T) {
	mustFail(t, `void f(int x) { 3 = x; }`, "assignable")
	mustFail(t, `void f(int x) { x + 1 = 2; }`, "assignable")
	// Generator targets must have only l-value choices.
	mustFail(t, `int a; void f(int x) { {| a | a + 1 |} = x; }`, "lvalue")
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"int":    TInt,
		"bool":   TBool,
		"void":   TVoid,
		"int[4]": ArrayOf(TInt, 4),
		"S":      RefTo("S"),
		"null":   {Base: Ref},
	}
	for want, ty := range cases {
		if ty.String() != want {
			t.Errorf("%v prints %q, want %q", ty, ty.String(), want)
		}
	}
}
