package types

import (
	"psketch/internal/ast"
	"psketch/internal/parser"
	"psketch/internal/regen"
	"psketch/internal/token"
)

// Builtin atomic primitives (§4.2). The first argument of each is an
// l-value evaluated for its location.
var builtinNames = map[string]bool{
	"AtomicSwap":        true,
	"CAS":               true,
	"AtomicReadAndDecr": true,
	"AtomicReadAndIncr": true,
}

// IsBuiltin reports whether name is a builtin atomic primitive.
func IsBuiltin(name string) bool { return builtinNames[name] }

// checkExpr checks e against an optional expected type and returns the
// resolved type, recording it in the Info.
func (c *checker) checkExpr(e ast.Expr, want *Type, sc *scope) Type {
	t := c.typeExpr(e, want, sc)
	c.info.Types[e] = t
	return t
}

// tryCheck runs checkExpr but converts a failure into (zero, false).
// Used to filter generator choices.
func (c *checker) tryCheck(e ast.Expr, want *Type, sc *scope) (t Type, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isCheck := r.(checkError); isCheck {
				ok = false
				return
			}
			panic(r)
		}
	}()
	return c.checkExpr(e, want, sc), true
}

func (c *checker) typeExpr(e ast.Expr, want *Type, sc *scope) Type {
	switch x := e.(type) {
	case *ast.Ident:
		if t, ok := sc.lookup(x.Name); ok {
			return t
		}
		if t, ok := c.globals[x.Name]; ok {
			return t
		}
		c.failf(x, "undefined variable %s", x.Name)
	case *ast.IntLit:
		return TInt
	case *ast.BoolLit:
		return TBool
	case *ast.NullLit:
		return Type{Base: Ref} // wildcard reference
	case *ast.BitsLit:
		return ArrayOf(TBool, len(x.Text))
	case *ast.Hole:
		if want != nil {
			switch {
			case want.Base == Int, want.Base == Bool:
				return *want
			case want.Base == Ref:
				c.failf(x, "?? cannot produce a pointer; use a {| ... |} generator")
			}
		}
		return TInt
	case *ast.Regen:
		return c.checkRegen(x, want, sc)
	case *ast.Unary:
		switch x.Op {
		case token.NOT:
			w := TBool
			if got := c.checkExpr(x.X, &w, sc); !got.Equal(TBool) {
				c.failf(x, "! needs bool, got %s", got)
			}
			return TBool
		case token.SUB:
			w := TInt
			if got := c.checkExpr(x.X, &w, sc); !got.Equal(TInt) {
				c.failf(x, "unary - needs int, got %s", got)
			}
			return TInt
		}
		c.failf(x, "bad unary operator %s", x.Op)
	case *ast.Binary:
		return c.checkBinary(x, sc)
	case *ast.FieldExpr:
		recv := c.checkExpr(x.X, nil, sc)
		if recv.Base != Ref || recv.IsArray() {
			c.failf(x, "field access on non-reference type %s", recv)
		}
		si := c.info.Structs[recv.Struct]
		if si == nil {
			c.failf(x, "field access on null-typed expression")
		}
		f, i := si.Field(x.Name)
		if i < 0 {
			c.failf(x, "struct %s has no field %s", recv.Struct, x.Name)
		}
		return f.Type
	case *ast.IndexExpr:
		arr := c.checkExpr(x.X, nil, sc)
		if !arr.IsArray() {
			c.failf(x, "indexing non-array type %s", arr)
		}
		w := TInt
		if got := c.checkExpr(x.Index, &w, sc); !got.Equal(TInt) {
			c.failf(x, "array index must be int, got %s", got)
		}
		return arr.Elem()
	case *ast.SliceExpr:
		arr := c.checkExpr(x.X, nil, sc)
		if !arr.IsArray() {
			c.failf(x, "slicing non-array type %s", arr)
		}
		w := TInt
		if got := c.checkExpr(x.Start, &w, sc); !got.Equal(TInt) {
			c.failf(x, "slice start must be int, got %s", got)
		}
		if x.Len > arr.Len {
			c.failf(x, "slice of %d cells from array of %d", x.Len, arr.Len)
		}
		return ArrayOf(arr.Elem(), x.Len)
	case *ast.CallExpr:
		return c.checkCall(x, sc)
	case *ast.CastExpr:
		ct := c.resolveType(x.Type)
		if !ct.Equal(TInt) {
			c.failf(x, "only (int) casts are supported")
		}
		got := c.checkExpr(x.X, nil, sc)
		if got.Base != Bool {
			c.failf(x, "(int) cast needs a bit or bit array, got %s", got)
		}
		return TInt
	case *ast.NewExpr:
		si := c.info.Structs[x.Type]
		if si == nil {
			c.failf(x, "new of unknown struct %s", x.Type)
		}
		ctor := si.CtorFields()
		if len(x.Args) != len(ctor) {
			c.failf(x, "new %s expects %d argument(s), got %d", x.Type, len(ctor), len(x.Args))
		}
		for i, a := range x.Args {
			ft := si.Fields[ctor[i]].Type
			got := c.checkExpr(a, &ft, sc)
			if !got.Equal(ft) {
				c.failf(a, "new %s: argument %d has type %s, want %s", x.Type, i, got, ft)
			}
		}
		return RefTo(x.Type)
	}
	c.failf(e, "unhandled expression %T", e)
	return Type{}
}

func (c *checker) checkBinary(x *ast.Binary, sc *scope) Type {
	switch x.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		w := TInt
		if got := c.checkExpr(x.X, &w, sc); !got.Equal(TInt) {
			c.failf(x, "%s needs int operands, got %s", x.Op, got)
		}
		if got := c.checkExpr(x.Y, &w, sc); !got.Equal(TInt) {
			c.failf(x, "%s needs int operands, got %s", x.Op, got)
		}
		return TInt
	case token.LT, token.LEQ, token.GT, token.GEQ:
		w := TInt
		if got := c.checkExpr(x.X, &w, sc); !got.Equal(TInt) {
			c.failf(x, "%s needs int operands, got %s", x.Op, got)
		}
		if got := c.checkExpr(x.Y, &w, sc); !got.Equal(TInt) {
			c.failf(x, "%s needs int operands, got %s", x.Op, got)
		}
		return TBool
	case token.LAND, token.LOR:
		w := TBool
		if got := c.checkExpr(x.X, &w, sc); !got.Equal(TBool) {
			c.failf(x, "%s needs bool operands, got %s", x.Op, got)
		}
		if got := c.checkExpr(x.Y, &w, sc); !got.Equal(TBool) {
			c.failf(x, "%s needs bool operands, got %s", x.Op, got)
		}
		return TBool
	case token.EQ, token.NEQ:
		lt := c.checkExpr(x.X, nil, sc)
		rt := c.checkExpr(x.Y, &lt, sc)
		if lt.IsArray() || rt.IsArray() {
			c.failf(x, "cannot compare arrays")
		}
		if !lt.Equal(rt) {
			c.failf(x, "cannot compare %s with %s", lt, rt)
		}
		// If the left side was a wildcard (null or hole-ish), adopt the
		// right side's type for it.
		if lt.Base == Ref && lt.Struct == "" && rt.Struct != "" {
			c.info.Types[x.X] = rt
		}
		return TBool
	}
	c.failf(x, "bad binary operator %s", x.Op)
	return Type{}
}

func (c *checker) checkCall(x *ast.CallExpr, sc *scope) Type {
	if IsBuiltin(x.Fun) {
		return c.checkBuiltin(x, sc)
	}
	fi, ok := c.info.Funcs[x.Fun]
	if !ok {
		c.failf(x, "call to unknown function %s", x.Fun)
	}
	if fi.Decl.Harness {
		c.failf(x, "cannot call harness function %s", x.Fun)
	}
	if len(x.Args) != len(fi.Params) {
		c.failf(x, "%s expects %d argument(s), got %d", x.Fun, len(fi.Params), len(x.Args))
	}
	for i, a := range x.Args {
		w := fi.Params[i]
		got := c.checkExpr(a, &w, sc)
		if !got.Equal(fi.Params[i]) {
			c.failf(a, "%s: argument %d has type %s, want %s", x.Fun, i, got, fi.Params[i])
		}
	}
	return fi.Ret
}

func (c *checker) checkBuiltin(x *ast.CallExpr, sc *scope) Type {
	checkLoc := func(i int) Type {
		a := x.Args[i]
		switch a.(type) {
		case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr, *ast.Regen:
			return c.checkLValue(a, sc)
		}
		c.failf(a, "%s: argument %d must be an assignable location", x.Fun, i)
		return Type{}
	}
	switch x.Fun {
	case "AtomicSwap":
		if len(x.Args) != 2 {
			c.failf(x, "AtomicSwap(loc, v) expects 2 arguments, got %d", len(x.Args))
		}
		lt := checkLoc(0)
		if lt.IsArray() {
			c.failf(x, "AtomicSwap location must be scalar, got %s", lt)
		}
		got := c.checkExpr(x.Args[1], &lt, sc)
		if !got.Equal(lt) {
			c.failf(x, "AtomicSwap: value type %s does not match location type %s", got, lt)
		}
		return lt
	case "CAS":
		if len(x.Args) != 3 {
			c.failf(x, "CAS(loc, old, new) expects 3 arguments, got %d", len(x.Args))
		}
		lt := checkLoc(0)
		if lt.IsArray() {
			c.failf(x, "CAS location must be scalar, got %s", lt)
		}
		for i := 1; i <= 2; i++ {
			got := c.checkExpr(x.Args[i], &lt, sc)
			if !got.Equal(lt) {
				c.failf(x, "CAS: argument %d has type %s, want %s", i, got, lt)
			}
		}
		return TBool
	case "AtomicReadAndDecr", "AtomicReadAndIncr":
		if len(x.Args) != 1 {
			c.failf(x, "%s(loc) expects 1 argument, got %d", x.Fun, len(x.Args))
		}
		lt := checkLoc(0)
		if !lt.Equal(TInt) {
			c.failf(x, "%s location must be int, got %s", x.Fun, lt)
		}
		return TInt
	}
	c.failf(x, "unknown builtin %s", x.Fun)
	return Type{}
}

// checkRegen enumerates the generator's language, parses each string,
// filters the type-valid choices, and infers the generator's type.
func (c *checker) checkRegen(x *ast.Regen, want *Type, sc *scope) Type {
	if x.Choices == nil {
		strs, err := regen.Enumerate(x.Text)
		if err != nil {
			c.failf(x, "%v", err)
		}
		var parsed []ast.Expr
		for _, s := range strs {
			e, err := parser.ParseExprString(s)
			if err != nil {
				continue // not program text; drop, as with ill-typed strings
			}
			parsed = append(parsed, e)
		}
		if len(parsed) == 0 {
			c.failf(x, "generator {|%s|}: no string parses as an expression", x.Text)
		}
		x.Choices = parsed
	}
	// Determine the target type.
	target := want
	if target == nil {
		for _, ch := range x.Choices {
			if t, ok := c.tryCheck(ch, nil, sc); ok {
				if t.Base == Ref && t.Struct == "" {
					continue // null wildcard: keep looking for a concrete type
				}
				tt := t
				target = &tt
				break
			}
		}
		if target == nil {
			c.failf(x, "generator {|%s|}: cannot infer a type for any choice", x.Text)
		}
	}
	var valid []ast.Expr
	for _, ch := range x.Choices {
		if t, ok := c.tryCheck(ch, target, sc); ok && t.Equal(*target) {
			valid = append(valid, ch)
		}
	}
	if len(valid) == 0 {
		c.failf(x, "generator {|%s|}: no choice has type %s", x.Text, *target)
	}
	x.Choices = valid
	return *target
}
