package token

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		ADD: "+", EQ: "==", LAND: "&&", HOLE: "??",
		KwReorder: "reorder", KwAtomic: "atomic", KwFork: "fork",
		COLON2: "::", EOF: "EOF",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(9999).String(), "Kind(") {
		t.Error("unknown kind should print its number")
	}
}

func TestKeywordsComplete(t *testing.T) {
	for name, k := range Keywords {
		if k.String() != name {
			t.Errorf("keyword %q maps to kind printing %q", name, k.String())
		}
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Lit: "tail"}, "tail"},
		{Token{Kind: INT, Lit: "42"}, "42"},
		{Token{Kind: REGEN, Lit: "a | b"}, "{|a | b|}"},
		{Token{Kind: HOLE}, "??"},
	}
	for _, c := range cases {
		if c.tok.String() != c.want {
			t.Errorf("got %q want %q", c.tok.String(), c.want)
		}
	}
}

func TestPosAndError(t *testing.T) {
	p := Pos{Offset: 10, Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Fatalf("pos %q", p)
	}
	if (Pos{}).String() != "-" {
		t.Fatal("zero pos should print -")
	}
	err := Errorf(p, "bad %s", "thing")
	if err.Error() != "3:7: bad thing" {
		t.Fatalf("err %q", err)
	}
}
