// Package token defines the lexical tokens of the PSketch language and
// source positions used in diagnostics throughout the front-end.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // Enqueue, tail, x
	INT    // 42
	BITS   // "11001000" (bit-array literal, kept as text)
	HOLE   // ??
	REGEN  // {| ... |} (generator body, kept as raw text)
	DEFINE // #define (handled by the preprocessor, surfaced for errors)

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	LAND // &&
	LOR  // ||
	NOT  // !

	EQ  // ==
	NEQ // !=
	LT  // <
	LEQ // <=
	GT  // >
	GEQ // >=

	ASSIGN // =

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]

	COMMA  // ,
	SEMI   // ;
	DOT    // .
	COLON2 // ::

	// Keywords.
	KwInt
	KwBool
	KwBit
	KwVoid
	KwStruct
	KwNew
	KwNull
	KwTrue
	KwFalse
	KwIf
	KwElse
	KwWhile
	KwReturn
	KwAssert
	KwAtomic
	KwFork
	KwReorder
	KwRepeat
	KwLock
	KwUnlock
	KwImplements
	KwGenerator
	KwHarness
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT",
	BITS: "BITS", HOLE: "??", REGEN: "REGEN", DEFINE: "#define",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	LAND: "&&", LOR: "||", NOT: "!",
	EQ: "==", NEQ: "!=", LT: "<", LEQ: "<=", GT: ">", GEQ: ">=",
	ASSIGN: "=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	COMMA: ",", SEMI: ";", DOT: ".", COLON2: "::",
	KwInt: "int", KwBool: "bool", KwBit: "bit", KwVoid: "void",
	KwStruct: "struct", KwNew: "new", KwNull: "null",
	KwTrue: "true", KwFalse: "false",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwReturn: "return",
	KwAssert: "assert", KwAtomic: "atomic", KwFork: "fork",
	KwReorder: "reorder", KwRepeat: "repeat",
	KwLock: "lock", KwUnlock: "unlock",
	KwImplements: "implements", KwGenerator: "generator", KwHarness: "harness",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "bool": KwBool, "bit": KwBit, "void": KwVoid,
	"struct": KwStruct, "new": KwNew, "null": KwNull,
	"true": KwTrue, "false": KwFalse,
	"if": KwIf, "else": KwElse, "while": KwWhile, "return": KwReturn,
	"assert": KwAssert, "atomic": KwAtomic, "fork": KwFork,
	"reorder": KwReorder, "repeat": KwRepeat,
	"lock": KwLock, "unlock": KwUnlock,
	"implements": KwImplements, "generator": KwGenerator, "harness": KwHarness,
}

// Pos is a source position: byte offset plus human-readable line/column.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

func (p Pos) String() string {
	if p.Line == 0 {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, BITS, REGEN
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, BITS:
		return t.Lit
	case REGEN:
		return "{|" + t.Lit + "|}"
	}
	return t.Kind.String()
}

// Error is a positioned diagnostic produced by the front-end.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Errorf builds a positioned error.
func Errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
