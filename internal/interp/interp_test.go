package interp

import (
	"testing"
	"testing/quick"

	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/parser"
	"psketch/internal/state"
)

// run lowers a sequential function, binds its int params, runs it to
// completion and returns the result (or the failure).
func run(t *testing.T, src string, opts desugar.Options, args ...int32) (int32, *Failure) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "F", opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	st := l.NewState()
	seq := p.Prologue
	for i, in := range p.Inputs {
		st.Cells[l.LocalOff(seq, seq.Local(in.Name))] = args[i]
	}
	cand := make(desugar.Candidate, len(sk.Holes))
	for _, sq := range []*ir.Seq{p.GlobalInit, seq} {
		ctx := NewCtx(l, st, sq, cand)
		for _, step := range sq.Steps {
			ok, f := ctx.EvalGuards(step)
			if f != nil {
				return 0, f
			}
			if !ok {
				continue
			}
			if f := ctx.ExecBody(step); f != nil {
				return 0, f
			}
		}
	}
	return st.Cells[l.LocalOff(seq, seq.Local(p.ResultVar))], nil
}

// W-bit two's-complement arithmetic must match the mathematical value
// wrapped into range.
func TestArithmeticWrapProperty(t *testing.T) {
	const w = 5
	wrap := func(v int64) int32 {
		v &= (1 << w) - 1
		if v >= 1<<(w-1) {
			v -= 1 << w
		}
		return int32(v)
	}
	src := `
int F(int a, int b) {
	int s = a + b;
	int d = a - b;
	int m = a * b;
	return s + d * m;
}
`
	f := func(a, b int8) bool {
		av, bv := wrap(int64(a)), wrap(int64(b))
		got, fail := run(t, src, desugar.Options{IntWidth: w}, av, bv)
		if fail != nil {
			return false
		}
		s := wrap(int64(av) + int64(bv))
		d := wrap(int64(av) - int64(bv))
		m := wrap(int64(av) * int64(bv))
		return got == wrap(int64(s)+int64(d)*int64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDivisionSemantics(t *testing.T) {
	src := `int F(int a, int b) { return a / b + a % b; }`
	cases := []struct{ a, b, want int32 }{
		{7, 2, 3 + 1},
		{-7, 2, -3 + -1}, // Go truncated division
		{7, -2, -3 + 1},
		{0, 5, 0},
	}
	for _, c := range cases {
		got, fail := run(t, src, desugar.Options{IntWidth: 5}, c.a, c.b)
		if fail != nil || got != c.want {
			t.Errorf("%d/%d: got %d fail=%v want %d", c.a, c.b, got, fail, c.want)
		}
	}
	if _, fail := run(t, src, desugar.Options{IntWidth: 5}, 3, 0); fail == nil || fail.Kind != FailDiv {
		t.Fatalf("division by zero: %v", fail)
	}
}

func TestShortCircuitEffects(t *testing.T) {
	src := `
int g = 0;
int F(int a) {
	bool x = a == 0 && AtomicSwap(g, 5) == 0;
	x = x;
	return g;
}
`
	got, fail := run(t, src, desugar.Options{}, 1)
	if fail != nil || got != 0 {
		t.Fatalf("rhs evaluated despite short circuit: g=%d fail=%v", got, fail)
	}
	got, fail = run(t, src, desugar.Options{}, 0)
	if fail != nil || got != 5 {
		t.Fatalf("rhs not evaluated: g=%d fail=%v", got, fail)
	}
}

func TestHeapAndBuiltins(t *testing.T) {
	src := `
struct N { N next = null; int v; }
N head;
int F(int a) {
	N n1 = new N(a);
	N n2 = new N(a + 1);
	n1.next = n2;
	head = n1;
	int acc = head.next.v;
	N old = AtomicSwap(head, n2);
	if (old == n1) { acc = acc + 10; }
	bool did = CAS(head.next, null, n1);
	if (did) { acc = acc + 100; }
	return acc + head.next.v;
}
`
	// acc = a+1; swap: head=n2, old=n1 → +10; n2.next == null → CAS
	// sets head.next=n1 → +100; head.next.v = a.
	got, fail := run(t, src, desugar.Options{IntWidth: 8}, 3)
	if fail != nil {
		t.Fatal(fail)
	}
	if got != 4+10+100+3 {
		t.Fatalf("got %d", got)
	}
}

func TestArrayBoundsAndBroadcast(t *testing.T) {
	src := `
int F(int a) {
	int[4] xs = 3;
	xs[2] = a;
	return xs[0] + xs[2];
}
`
	got, fail := run(t, src, desugar.Options{}, 9)
	if fail != nil || got != 12 {
		t.Fatalf("got %d fail=%v", got, fail)
	}
	oob := `int F(int a) { int[4] xs = 0; return xs[a]; }`
	if _, fail := run(t, oob, desugar.Options{}, 7); fail == nil || fail.Kind != FailBounds {
		t.Fatalf("oob: %v", fail)
	}
}

func TestNullDereference(t *testing.T) {
	src := `
struct N { N next = null; int v = 0; }
int F(int a) {
	N n = null;
	return n.v;
}
`
	if _, fail := run(t, src, desugar.Options{}, 0); fail == nil || fail.Kind != FailNull {
		t.Fatalf("got %v", fail)
	}
}

func TestAssertFailure(t *testing.T) {
	src := `int F(int a) { assert a != 3; return a; }`
	if _, fail := run(t, src, desugar.Options{}, 3); fail == nil || fail.Kind != FailAssert {
		t.Fatalf("got %v", fail)
	}
	if _, fail := run(t, src, desugar.Options{}, 4); fail != nil {
		t.Fatalf("got %v", fail)
	}
}

func TestBitArraysAndCast(t *testing.T) {
	src := `
int F(int a) {
	bit[4] b = "1010";
	int packed = (int) b[0::4];
	bit one = b[2];
	if (one) { packed = packed + 100; }
	return packed;
}
`
	// "1010" read left-to-right: cells [1,0,1,0]; bit 0 is the LSB →
	// packed = 1 + 4 = 5; b[2] = 1 → +100 → wraps at width 6? 105 > 31.
	got, fail := run(t, src, desugar.Options{IntWidth: 8}, 0)
	if fail != nil || got != 105 {
		t.Fatalf("got %d fail=%v", got, fail)
	}
}

// Generators resolve by candidate choice, both as values and as
// assignment targets and swap locations.
func TestRegenResolution(t *testing.T) {
	src := `
int a = 0;
int b = 0;
int F(int x) {
	{| a | b |} = x;
	int old = AtomicSwap({| a | b |}, 7);
	return a * 16 + b + old;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "F", desugar.Options{IntWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(cand desugar.Candidate, x int32) int32 {
		st := l.NewState()
		seq := p.Prologue
		st.Cells[l.LocalOff(seq, seq.Local("x"))] = x
		for _, sq := range []*ir.Seq{p.GlobalInit, seq} {
			ctx := NewCtx(l, st, sq, cand)
			for _, step := range sq.Steps {
				ok, f := ctx.EvalGuards(step)
				if f != nil {
					t.Fatal(f)
				}
				if !ok {
					continue
				}
				if f := ctx.ExecBody(step); f != nil {
					t.Fatal(f)
				}
			}
		}
		return st.Cells[l.LocalOff(seq, seq.Local(p.ResultVar))]
	}
	// choice (0,0): a = x; old = swap(a,7) = x → a=7,b=0 → 7*16 + 0 + x.
	if got := runWith(desugar.Candidate{0, 0}, 3); got != 7*16+0+3 {
		t.Fatalf("choice (0,0): got %d", got)
	}
	// choice (1,1): b = x; old = swap(b,7) = x → a=0,b=7 → 0 + 7 + x.
	if got := runWith(desugar.Candidate{1, 1}, 3); got != 7+3 {
		t.Fatalf("choice (1,1): got %d", got)
	}
	// choice (0,1): a = x; old = swap(b,7) = 0 → a=x,b=7 → 16x + 7.
	if got := runWith(desugar.Candidate{0, 1}, 3); got != 3*16+7 {
		t.Fatalf("choice (0,1): got %d", got)
	}
}

func TestHoleEvaluation(t *testing.T) {
	src := `
int F(int x) {
	bool b = ??;
	int c = ??(3);
	if (b) { return x + c; }
	return x - c;
}
`
	prog, _ := parser.Parse(src)
	sk, err := desugar.Desugar(prog, "F", desugar.Options{IntWidth: 6})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ir.Lower(sk)
	l, _ := state.NewLayout(p)
	run := func(cand desugar.Candidate) int32 {
		st := l.NewState()
		seq := p.Prologue
		st.Cells[l.LocalOff(seq, seq.Local("x"))] = 10
		ctx := NewCtx(l, st, seq, cand)
		for _, step := range seq.Steps {
			ok, f := ctx.EvalGuards(step)
			if f != nil {
				t.Fatal(f)
			}
			if !ok {
				continue
			}
			if f := ctx.ExecBody(step); f != nil {
				t.Fatal(f)
			}
		}
		return st.Cells[l.LocalOff(seq, seq.Local(p.ResultVar))]
	}
	// Hole order: b first, then c.
	if got := run(desugar.Candidate{1, 5}); got != 15 {
		t.Fatalf("b=1 c=5: got %d", got)
	}
	if got := run(desugar.Candidate{0, 5}); got != 5 {
		t.Fatalf("b=0 c=5: got %d", got)
	}
}

func TestFailureStrings(t *testing.T) {
	kinds := []FailKind{FailAssert, FailNull, FailBounds, FailDiv, FailDeadlock}
	for _, k := range kinds {
		f := &Failure{Kind: k, Msg: "ctx"}
		if f.Error() == "" || k.String() == "failure" {
			t.Fatalf("kind %d has no description", k)
		}
	}
}
