// Package interp is the concrete evaluator for lowered programs: it
// executes steps of a fixed candidate on a machine state. The model
// checker drives it across interleavings; the CEGIS loop uses it to run
// sequential candidates on counterexample inputs.
package interp

import (
	"fmt"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/state"
	"psketch/internal/token"
	"psketch/internal/types"
)

// FailKind classifies a property violation.
type FailKind int

// The failure kinds checked by the verifier (§4.3): programmer asserts,
// implicit memory safety, deadlock (detected by the model checker), and
// the bounded-termination assert emitted by loop unrolling.
const (
	FailAssert FailKind = iota
	FailNull
	FailBounds
	FailDiv
	FailDeadlock
)

func (k FailKind) String() string {
	switch k {
	case FailAssert:
		return "assertion violation"
	case FailNull:
		return "null dereference"
	case FailBounds:
		return "array index out of bounds"
	case FailDiv:
		return "division by zero"
	case FailDeadlock:
		return "deadlock"
	}
	return "failure"
}

// Failure is a concrete property violation.
type Failure struct {
	Kind FailKind
	Pos  token.Pos
	Msg  string
}

func (f *Failure) Error() string {
	if f.Msg != "" {
		return fmt.Sprintf("%s: %s: %s", f.Pos, f.Kind, f.Msg)
	}
	return fmt.Sprintf("%s: %s", f.Pos, f.Kind)
}

// Ctx evaluates expressions and statements of one sequence against a
// state, under a fixed candidate.
type Ctx struct {
	L    *state.Layout
	P    *ir.Program
	St   *state.State
	Seq  *ir.Seq
	Cand desugar.Candidate
}

// NewCtx builds an evaluation context.
func NewCtx(l *state.Layout, st *state.State, seq *ir.Seq, cand desugar.Candidate) *Ctx {
	return &Ctx{L: l, P: l.Prog, St: st, Seq: seq, Cand: cand}
}

// Reset retargets the context at another state (and optionally another
// sequence), so long-lived contexts can be reused across transitions
// instead of allocating one per step — the model checker's hot path.
func (c *Ctx) Reset(st *state.State, seq *ir.Seq) {
	c.St, c.Seq = st, seq
}

// wrap truncates to W-bit two's complement.
func (c *Ctx) wrap(v int64) int32 {
	w := uint(c.P.W)
	m := int64(1) << w
	v &= m - 1
	if v >= m>>1 {
		v -= m
	}
	return int32(v)
}

// EvalGuards reports whether every guard of the step holds. Guards are
// side-effect-free by construction.
func (c *Ctx) EvalGuards(s *ir.Step) (bool, *Failure) {
	for _, g := range s.Guards {
		v, f := c.Eval(g)
		if f != nil {
			return false, f
		}
		if v == 0 {
			return false, nil
		}
	}
	return true, nil
}

// EvalCond evaluates the blocking condition (true when absent).
func (c *Ctx) EvalCond(s *ir.Step) (bool, *Failure) {
	if s.Cond == nil {
		return true, nil
	}
	v, f := c.Eval(s.Cond)
	return v != 0, f
}

// ExecBody runs the step's body atomically.
func (c *Ctx) ExecBody(s *ir.Step) *Failure {
	for _, st := range s.Body {
		if f := c.ExecStmt(st); f != nil {
			return f
		}
	}
	return nil
}

// ExecStmt executes one simple statement.
func (c *Ctx) ExecStmt(s ast.Stmt) *Failure {
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			if f := c.ExecStmt(st); f != nil {
				return f
			}
		}
		return nil
	case *ast.AssignStmt:
		return c.Assign(x.LHS, x.RHS)
	case *ast.AssertStmt:
		v, f := c.Eval(x.Cond)
		if f != nil {
			return f
		}
		if v == 0 {
			return &Failure{Kind: FailAssert, Pos: x.P, Msg: types.ExprString(x.Cond)}
		}
		return nil
	case *ast.ExprStmt:
		_, f := c.Eval(x.X)
		return f
	case *ast.IfStmt:
		v, f := c.Eval(x.Cond)
		if f != nil {
			return f
		}
		if v != 0 {
			return c.ExecStmt(x.Then)
		}
		if x.Else != nil {
			return c.ExecStmt(x.Else)
		}
		return nil
	}
	return &Failure{Kind: FailAssert, Pos: s.Pos(), Msg: fmt.Sprintf("interp: unexpected statement %T", s)}
}

// loc is a resolved storage location: a cell range in the state.
type loc struct {
	off int
	n   int
}

// ResolveLoc resolves an l-value to its cell range.
func (c *Ctx) ResolveLoc(e ast.Expr) (loc, *Failure) {
	switch x := e.(type) {
	case *ast.Ident:
		if i := c.Seq.Local(x.Name); i >= 0 {
			return loc{c.L.LocalOff(c.Seq, i), cellsOf(c.Seq.Locals[i].Type)}, nil
		}
		if i := c.P.Global(x.Name); i >= 0 {
			return loc{c.L.GlobalOff(i), cellsOf(c.P.Globals[i].Type)}, nil
		}
		return loc{}, &Failure{Kind: FailAssert, Pos: x.P, Msg: "interp: unknown variable " + x.Name}
	case *ast.FieldExpr:
		slot, f := c.Eval(x.X)
		if f != nil {
			return loc{}, f
		}
		if slot == 0 {
			return loc{}, &Failure{Kind: FailNull, Pos: x.P, Msg: types.ExprString(x)}
		}
		sn, err := c.P.StructOf(c.Seq, x)
		if err != nil {
			return loc{}, &Failure{Kind: FailAssert, Pos: x.P, Msg: err.Error()}
		}
		off, err := c.L.FieldOff(sn, x.Name, slot)
		if err != nil {
			return loc{}, &Failure{Kind: FailBounds, Pos: x.P, Msg: err.Error()}
		}
		return loc{off, 1}, nil
	case *ast.IndexExpr:
		base, f := c.ResolveLoc(x.X)
		if f != nil {
			return loc{}, f
		}
		idx, f := c.Eval(x.Index)
		if f != nil {
			return loc{}, f
		}
		if idx < 0 || int(idx) >= base.n {
			return loc{}, &Failure{Kind: FailBounds, Pos: x.P, Msg: fmt.Sprintf("index %d of %d", idx, base.n)}
		}
		return loc{base.off + int(idx), 1}, nil
	case *ast.SliceExpr:
		base, f := c.ResolveLoc(x.X)
		if f != nil {
			return loc{}, f
		}
		st, f := c.Eval(x.Start)
		if f != nil {
			return loc{}, f
		}
		if st < 0 || int(st)+x.Len > base.n {
			return loc{}, &Failure{Kind: FailBounds, Pos: x.P, Msg: fmt.Sprintf("slice [%d::%d] of %d", st, x.Len, base.n)}
		}
		return loc{base.off + int(st), x.Len}, nil
	case *ast.Regen:
		meta := c.P.Sketch.Holes[x.ID]
		return c.ResolveLoc(x.Choices[c.Cand.Choice(x.ID, meta.Choices)])
	}
	return loc{}, &Failure{Kind: FailAssert, Pos: e.Pos(), Msg: "interp: not a location"}
}

func cellsOf(t types.Type) int {
	if t.IsArray() {
		return t.Len
	}
	return 1
}

// Assign stores rhs into the location lhs, handling arrays, scalar
// broadcast fills, bit-string literals, and bit-array holes.
func (c *Ctx) Assign(lhs, rhs ast.Expr) *Failure {
	dst, f := c.ResolveLoc(lhs)
	if f != nil {
		return f
	}
	if dst.n == 1 {
		v, f := c.Eval(rhs)
		if f != nil {
			return f
		}
		c.St.Cells[dst.off] = v
		return nil
	}
	switch r := rhs.(type) {
	case *ast.IntLit:
		for i := 0; i < dst.n; i++ {
			c.St.Cells[dst.off+i] = c.wrap(r.Val)
		}
		return nil
	case *ast.BoolLit:
		v := int32(0)
		if r.Val {
			v = 1
		}
		for i := 0; i < dst.n; i++ {
			c.St.Cells[dst.off+i] = v
		}
		return nil
	case *ast.BitsLit:
		if len(r.Text) != dst.n {
			return &Failure{Kind: FailBounds, Pos: r.P, Msg: "bit-string length mismatch"}
		}
		for i := 0; i < dst.n; i++ {
			v := int32(0)
			if r.Text[i] == '1' {
				v = 1
			}
			c.St.Cells[dst.off+i] = v
		}
		return nil
	case *ast.Hole:
		bits := c.Cand.Value(r.ID)
		for i := 0; i < dst.n; i++ {
			c.St.Cells[dst.off+i] = int32((bits >> uint(i)) & 1)
		}
		return nil
	case *ast.Regen:
		meta := c.P.Sketch.Holes[r.ID]
		return c.Assign(lhs, r.Choices[c.Cand.Choice(r.ID, meta.Choices)])
	default:
		src, f := c.ResolveLoc(rhs)
		if f != nil {
			return f
		}
		if src.n != dst.n {
			return &Failure{Kind: FailBounds, Pos: rhs.Pos(), Msg: "array length mismatch"}
		}
		tmp := make([]int32, src.n)
		copy(tmp, c.St.Cells[src.off:src.off+src.n])
		copy(c.St.Cells[dst.off:dst.off+dst.n], tmp)
		return nil
	}
}

// Eval evaluates a scalar expression (side effects included: builtins
// and allocation may run).
func (c *Ctx) Eval(e ast.Expr) (int32, *Failure) {
	switch x := e.(type) {
	case *ast.IntLit:
		return c.wrap(x.Val), nil
	case *ast.BoolLit:
		if x.Val {
			return 1, nil
		}
		return 0, nil
	case *ast.NullLit:
		return 0, nil
	case *ast.Ident:
		if x.Name == ir.TidVar {
			return int32(c.Seq.Tid), nil
		}
		l, f := c.ResolveLoc(x)
		if f != nil {
			return 0, f
		}
		if l.n != 1 {
			return 0, &Failure{Kind: FailAssert, Pos: x.P, Msg: "array used as scalar"}
		}
		return c.St.Cells[l.off], nil
	case *ast.FieldExpr, *ast.IndexExpr:
		l, f := c.ResolveLoc(e)
		if f != nil {
			return 0, f
		}
		return c.St.Cells[l.off], nil
	case *ast.Hole:
		meta := c.P.Sketch.Holes[x.ID]
		v := c.Cand.Value(x.ID)
		if meta.Kind == desugar.HoleBool {
			if v != 0 {
				return 1, nil
			}
			return 0, nil
		}
		return c.wrap(v), nil
	case *ast.Regen:
		meta := c.P.Sketch.Holes[x.ID]
		return c.Eval(x.Choices[c.Cand.Choice(x.ID, meta.Choices)])
	case *ast.Unary:
		v, f := c.Eval(x.X)
		if f != nil {
			return 0, f
		}
		switch x.Op {
		case token.NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case token.SUB:
			return c.wrap(-int64(v)), nil
		}
	case *ast.Binary:
		return c.evalBinary(x)
	case *ast.CastExpr:
		return c.evalCast(x)
	case *ast.CallExpr:
		return c.evalBuiltin(x)
	case *ast.NewExpr:
		return c.evalNew(x)
	}
	return 0, &Failure{Kind: FailAssert, Pos: e.Pos(), Msg: fmt.Sprintf("interp: cannot evaluate %T", e)}
}

func (c *Ctx) evalBinary(x *ast.Binary) (int32, *Failure) {
	// Short-circuit forms first (their right side may have effects).
	switch x.Op {
	case token.LAND:
		l, f := c.Eval(x.X)
		if f != nil || l == 0 {
			return 0, f
		}
		r, f := c.Eval(x.Y)
		if f != nil {
			return 0, f
		}
		return boolVal(r != 0), nil
	case token.LOR:
		l, f := c.Eval(x.X)
		if f != nil {
			return 0, f
		}
		if l != 0 {
			return 1, nil
		}
		r, f := c.Eval(x.Y)
		if f != nil {
			return 0, f
		}
		return boolVal(r != 0), nil
	}
	l, f := c.Eval(x.X)
	if f != nil {
		return 0, f
	}
	r, f := c.Eval(x.Y)
	if f != nil {
		return 0, f
	}
	switch x.Op {
	case token.ADD:
		return c.wrap(int64(l) + int64(r)), nil
	case token.SUB:
		return c.wrap(int64(l) - int64(r)), nil
	case token.MUL:
		return c.wrap(int64(l) * int64(r)), nil
	case token.QUO:
		if r == 0 {
			return 0, &Failure{Kind: FailDiv, Pos: x.P}
		}
		return c.wrap(int64(l) / int64(r)), nil
	case token.REM:
		if r == 0 {
			return 0, &Failure{Kind: FailDiv, Pos: x.P}
		}
		return c.wrap(int64(l) % int64(r)), nil
	case token.EQ:
		return boolVal(l == r), nil
	case token.NEQ:
		return boolVal(l != r), nil
	case token.LT:
		return boolVal(l < r), nil
	case token.LEQ:
		return boolVal(l <= r), nil
	case token.GT:
		return boolVal(l > r), nil
	case token.GEQ:
		return boolVal(l >= r), nil
	}
	return 0, &Failure{Kind: FailAssert, Pos: x.P, Msg: "interp: bad operator"}
}

func boolVal(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// evalCast packs a bit or bit-array into an integer (cell 0 is the
// least-significant bit).
func (c *Ctx) evalCast(x *ast.CastExpr) (int32, *Failure) {
	switch inner := x.X.(type) {
	case *ast.SliceExpr, *ast.Ident, *ast.IndexExpr, *ast.FieldExpr:
		l, f := c.ResolveLoc(inner)
		if f != nil {
			return 0, f
		}
		v := int64(0)
		for i := 0; i < l.n; i++ {
			if c.St.Cells[l.off+i] != 0 {
				v |= 1 << uint(i)
			}
		}
		return c.wrap(v), nil
	default:
		v, f := c.Eval(x.X)
		if f != nil {
			return 0, f
		}
		return boolVal(v != 0), nil
	}
}

// evalBuiltin executes the atomic primitives of §4.2.
func (c *Ctx) evalBuiltin(x *ast.CallExpr) (int32, *Failure) {
	locOf := func() (loc, *Failure) { return c.ResolveLoc(x.Args[0]) }
	switch x.Fun {
	case "AtomicSwap":
		l, f := locOf()
		if f != nil {
			return 0, f
		}
		v, f := c.Eval(x.Args[1])
		if f != nil {
			return 0, f
		}
		old := c.St.Cells[l.off]
		c.St.Cells[l.off] = v
		return old, nil
	case "CAS":
		l, f := locOf()
		if f != nil {
			return 0, f
		}
		oldv, f := c.Eval(x.Args[1])
		if f != nil {
			return 0, f
		}
		newv, f := c.Eval(x.Args[2])
		if f != nil {
			return 0, f
		}
		if c.St.Cells[l.off] == oldv {
			c.St.Cells[l.off] = newv
			return 1, nil
		}
		return 0, nil
	case "AtomicReadAndDecr":
		l, f := locOf()
		if f != nil {
			return 0, f
		}
		old := c.St.Cells[l.off]
		c.St.Cells[l.off] = c.wrap(int64(old) - 1)
		return old, nil
	case "AtomicReadAndIncr":
		l, f := locOf()
		if f != nil {
			return 0, f
		}
		old := c.St.Cells[l.off]
		c.St.Cells[l.off] = c.wrap(int64(old) + 1)
		return old, nil
	}
	return 0, &Failure{Kind: FailAssert, Pos: x.P, Msg: "interp: unknown builtin " + x.Fun}
}

// evalNew allocates the static arena slot of the site and initializes
// the fields (constructor arguments bind the defaultless fields in
// declaration order; other fields get their declared defaults).
func (c *Ctx) evalNew(x *ast.NewExpr) (int32, *Failure) {
	site := c.P.Sites[x.Site]
	slot := int32(site.Slot)
	si := c.P.Sketch.Info.Structs[x.Type]
	ctor := si.CtorFields()
	argOf := map[int]ast.Expr{}
	for i, fi := range ctor {
		argOf[fi] = x.Args[i]
	}
	for fi, fld := range si.Fields {
		var v int32
		if a, ok := argOf[fi]; ok {
			av, f := c.Eval(a)
			if f != nil {
				return 0, f
			}
			v = av
		} else if fld.Default != nil {
			dv, f := c.Eval(fld.Default)
			if f != nil {
				return 0, f
			}
			v = dv
		}
		off, err := c.L.FieldOff(x.Type, fld.Name, slot)
		if err != nil {
			return 0, &Failure{Kind: FailBounds, Pos: x.P, Msg: err.Error()}
		}
		c.St.Cells[off] = v
	}
	return slot, nil
}
