// Package circuit builds and-inverter graphs (AIGs) with structural
// hashing, plus bit-vector word operations on top. The symbolic
// evaluator encodes `fail(Skt[c])` as a single literal over hole-bit
// inputs (§6); Tseitin conversion then feeds the CDCL solver, with a
// persistent node→variable map so the CEGIS loop can keep one
// incremental SAT instance across iterations.
package circuit

import (
	"fmt"

	"psketch/internal/sat"
)

// Lit is a literal over AIG nodes: node id << 1 | sign bit.
// Node 0 is the constant true, so True = 0 and False = 1.
type Lit int32

// The boolean constants.
const (
	True  Lit = 0
	False Lit = 1
)

// Not complements the literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) node() int32 { return int32(l) >> 1 }
func (l Lit) neg() bool   { return l&1 == 1 }

// IsConst reports whether the literal is a constant, returning its
// value.
func (l Lit) IsConst() (bool, bool) {
	if l.node() == 0 {
		return true, !l.neg()
	}
	return false, false
}

type node struct {
	a, b Lit // a == b == -1 for inputs; node 0 is the constant
}

// Builder constructs a hash-consed AIG.
type Builder struct {
	nodes []node
	hash  map[[2]Lit]Lit
	// inputs records which nodes are inputs (for Eval).
	isInput []bool
	// satLits/satEnds are ToSAT's reusable clause-batch scratch.
	satLits []sat.Lit
	satEnds []int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{hash: map[[2]Lit]Lit{}}
	b.nodes = append(b.nodes, node{}) // constant node 0
	b.isInput = append(b.isInput, false)
	return b
}

// NumNodes returns the number of AIG nodes (including the constant).
func (b *Builder) NumNodes() int { return len(b.nodes) }

// Input allocates a fresh input node.
func (b *Builder) Input() Lit {
	id := len(b.nodes)
	b.nodes = append(b.nodes, node{a: -1, b: -1})
	b.isInput = append(b.isInput, true)
	return Lit(id << 1)
}

// Const returns the constant literal for v.
func Const(v bool) Lit {
	if v {
		return True
	}
	return False
}

// And builds a ∧ b with constant folding and structural hashing.
func (b *Builder) And(x, y Lit) Lit {
	switch {
	case x == False || y == False:
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	case x == y.Not():
		return False
	}
	if x > y {
		x, y = y, x
	}
	key := [2]Lit{x, y}
	if l, ok := b.hash[key]; ok {
		return l
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, node{a: x, b: y})
	b.isInput = append(b.isInput, false)
	l := Lit(id << 1)
	b.hash[key] = l
	return l
}

// Or builds x ∨ y.
func (b *Builder) Or(x, y Lit) Lit { return b.And(x.Not(), y.Not()).Not() }

// Xor builds x ⊕ y.
func (b *Builder) Xor(x, y Lit) Lit {
	return b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
}

// Eq builds x ↔ y.
func (b *Builder) Eq(x, y Lit) Lit { return b.Xor(x, y).Not() }

// Mux builds if c then t else f.
func (b *Builder) Mux(c, t, f Lit) Lit {
	if t == f {
		return t
	}
	return b.Or(b.And(c, t), b.And(c.Not(), f))
}

// Implies builds x → y.
func (b *Builder) Implies(x, y Lit) Lit { return b.Or(x.Not(), y) }

// AndN folds a conjunction.
func (b *Builder) AndN(ls ...Lit) Lit {
	acc := True
	for _, l := range ls {
		acc = b.And(acc, l)
	}
	return acc
}

// OrN folds a disjunction.
func (b *Builder) OrN(ls ...Lit) Lit {
	acc := False
	for _, l := range ls {
		acc = b.Or(acc, l)
	}
	return acc
}

// Eval computes the value of l under an input assignment.
func (b *Builder) Eval(inputs map[Lit]bool, l Lit) bool {
	memo := make(map[int32]bool)
	var rec func(n int32) bool
	rec = func(n int32) bool {
		if n == 0 {
			return true
		}
		if v, ok := memo[n]; ok {
			return v
		}
		nd := b.nodes[n]
		var v bool
		if b.isInput[n] {
			v = inputs[Lit(n<<1)]
		} else {
			av := rec(nd.a.node()) != nd.a.neg()
			bv := rec(nd.b.node()) != nd.b.neg()
			v = av && bv
		}
		memo[n] = v
		return v
	}
	return rec(l.node()) != l.neg()
}

// VarMap persists the AIG-node → SAT-variable mapping across
// incremental encodings.
type VarMap struct {
	vars []int // node id -> sat var + 1 (0 = unmapped)
}

// NewVarMap returns an empty mapping.
func NewVarMap() *VarMap { return &VarMap{} }

func (m *VarMap) get(n int32) (int, bool) {
	if int(n) < len(m.vars) && m.vars[n] != 0 {
		return m.vars[n] - 1, true
	}
	return 0, false
}

func (m *VarMap) set(n int32, v int) {
	for int(n) >= len(m.vars) {
		m.vars = append(m.vars, 0)
	}
	m.vars[n] = v + 1
}

// ToSAT Tseitin-encodes the cone of l into the solver (a plain Solver
// or a Portfolio — anything that can allocate variables and take
// clauses), reusing previously encoded nodes, and returns the SAT
// literal for l.
//
// When the solver supports batch insertion (sat.BatchAdder), the
// Tseitin clauses of the whole cone are buffered into builder-owned
// scratch and handed over in one AddClauses call, so a portfolio
// broadcasts each cone once per worker instead of once per clause. The
// clause stream each worker sees is identical to per-clause emission.
func (b *Builder) ToSAT(s sat.Adder, m *VarMap, l Lit) sat.Lit {
	batch, _ := s.(sat.BatchAdder)
	b.satLits = b.satLits[:0]
	b.satEnds = b.satEnds[:0]
	emit := func(lits ...sat.Lit) {
		if batch != nil {
			b.satLits = append(b.satLits, lits...)
			b.satEnds = append(b.satEnds, len(b.satLits))
		} else {
			s.AddClause(lits...)
		}
	}
	var rec func(n int32) int
	rec = func(n int32) int {
		if v, ok := m.get(n); ok {
			return v
		}
		v := s.NewVar()
		m.set(n, v)
		if n == 0 {
			emit(sat.MkLit(v, false)) // constant true
			return v
		}
		nd := b.nodes[n]
		if b.isInput[n] {
			return v
		}
		av := rec(nd.a.node())
		bv := rec(nd.b.node())
		la := sat.MkLit(av, nd.a.neg())
		lb := sat.MkLit(bv, nd.b.neg())
		ln := sat.MkLit(v, false)
		// n ↔ (a ∧ b)
		emit(ln.Not(), la)
		emit(ln.Not(), lb)
		emit(la.Not(), lb.Not(), ln)
		return v
	}
	v := rec(l.node())
	if batch != nil && len(b.satEnds) > 0 {
		batch.AddClauses(b.satLits, b.satEnds)
	}
	return sat.MkLit(v, l.neg())
}

// SATVar returns the SAT variable assigned to an input literal,
// allocating it if needed (used to read hole values out of a model).
func (b *Builder) SATVar(s sat.Adder, m *VarMap, in Lit) int {
	if in.neg() {
		panic("circuit: SATVar on negated literal")
	}
	if v, ok := m.get(in.node()); ok {
		return v
	}
	v := s.NewVar()
	m.set(in.node(), v)
	return v
}

// ------------------------------------------------------------- words

// Word is a little-endian bit vector (bit 0 = LSB).
type Word []Lit

// ConstW builds a w-bit constant word.
func ConstW(w int, v int64) Word {
	out := make(Word, w)
	for i := 0; i < w; i++ {
		if (v>>uint(i))&1 == 1 {
			out[i] = True
		} else {
			out[i] = False
		}
	}
	return out
}

// ConstVal extracts the constant value of a word if fully constant
// (sign-extended).
func ConstVal(x Word) (int64, bool) {
	v := int64(0)
	for i, l := range x {
		c, bit := l.IsConst()
		if !c {
			return 0, false
		}
		if bit {
			v |= 1 << uint(i)
		}
	}
	w := uint(len(x))
	if w < 64 && v >= int64(1)<<(w-1) {
		v -= int64(1) << w
	}
	return v, true
}

// InputW allocates a word of fresh inputs.
func (b *Builder) InputW(w int) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = b.Input()
	}
	return out
}

// ZextW zero-extends or truncates to w bits.
func ZextW(x Word, w int) Word {
	out := make(Word, w)
	for i := 0; i < w; i++ {
		if i < len(x) {
			out[i] = x[i]
		} else {
			out[i] = False
		}
	}
	return out
}

// SextW sign-extends or truncates to w bits.
func SextW(x Word, w int) Word {
	out := make(Word, w)
	for i := 0; i < w; i++ {
		switch {
		case i < len(x):
			out[i] = x[i]
		case len(x) > 0:
			out[i] = x[len(x)-1]
		default:
			out[i] = False
		}
	}
	return out
}

// AddW builds x + y (same width, wrapping).
func (b *Builder) AddW(x, y Word) Word {
	out := make(Word, len(x))
	carry := False
	for i := range x {
		s := b.Xor(b.Xor(x[i], y[i]), carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(carry, b.Xor(x[i], y[i])))
		out[i] = s
	}
	return out
}

// NegW builds two's-complement negation.
func (b *Builder) NegW(x Word) Word {
	inv := make(Word, len(x))
	for i := range x {
		inv[i] = x[i].Not()
	}
	return b.AddW(inv, ConstW(len(x), 1))
}

// SubW builds x - y.
func (b *Builder) SubW(x, y Word) Word { return b.AddW(x, b.NegW(y)) }

// MulW builds x * y (wrapping shift-and-add).
func (b *Builder) MulW(x, y Word) Word {
	w := len(x)
	acc := ConstW(w, 0)
	for i := 0; i < w; i++ {
		shifted := make(Word, w)
		for j := 0; j < w; j++ {
			if j < i {
				shifted[j] = False
			} else {
				shifted[j] = b.And(x[j-i], y[i])
			}
		}
		acc = b.AddW(acc, shifted)
	}
	return acc
}

// EqW builds x == y.
func (b *Builder) EqW(x, y Word) Lit {
	acc := True
	for i := range x {
		acc = b.And(acc, b.Eq(x[i], y[i]))
	}
	return acc
}

// LtS builds the signed comparison x < y.
func (b *Builder) LtS(x, y Word) Lit {
	w := len(x)
	// x < y  ⇔  (sx ∧ ¬sy) ∨ (sx ↔ sy) ∧ unsigned_lt(x, y)
	sx, sy := x[w-1], y[w-1]
	lt := False
	for i := 0; i < w-1; i++ {
		lt = b.Mux(b.Xor(x[i], y[i]), b.And(x[i].Not(), y[i]), lt)
	}
	sameSign := b.Eq(sx, sy)
	return b.Or(b.And(sx, sy.Not()), b.And(sameSign, lt))
}

// MuxW builds if c then t else f, element-wise.
func (b *Builder) MuxW(c Lit, t, f Word) Word {
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.Mux(c, t[i], f[i])
	}
	return out
}

// DivModU builds the unsigned restoring division x / y and x % y.
// The caller must handle y == 0 separately (results are unspecified).
func (b *Builder) DivModU(x, y Word) (q, r Word) {
	w := len(x)
	q = ConstW(w, 0)
	r = ConstW(w, 0)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		nr := make(Word, w)
		nr[0] = x[i]
		for j := 1; j < w; j++ {
			nr[j] = r[j-1]
		}
		r = nr
		// if r >= y { r -= y; q[i] = 1 }
		ge := b.geU(r, y)
		r = b.MuxW(ge, b.SubW(r, y), r)
		q[i] = ge
	}
	return q, r
}

// geU builds the unsigned comparison x >= y.
func (b *Builder) geU(x, y Word) Lit {
	ge := True
	for i := 0; i < len(x); i++ {
		ge = b.Mux(b.Xor(x[i], y[i]), b.And(x[i], y[i].Not()), ge)
	}
	return ge
}

// IsZeroW builds x == 0.
func (b *Builder) IsZeroW(x Word) Lit {
	any := False
	for _, l := range x {
		any = b.Or(any, l)
	}
	return any.Not()
}

// String renders a literal for debugging.
func (l Lit) String() string {
	if l == True {
		return "T"
	}
	if l == False {
		return "F"
	}
	if l.neg() {
		return fmt.Sprintf("!n%d", l.node())
	}
	return fmt.Sprintf("n%d", l.node())
}
