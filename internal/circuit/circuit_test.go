package circuit

import (
	"testing"
	"testing/quick"

	"psketch/internal/sat"
)

const w = 6 // word width for property tests

// evalW evaluates a word to a signed integer under an input assignment.
func evalW(b *Builder, in map[Lit]bool, x Word) int64 {
	v := int64(0)
	for i, l := range x {
		if b.Eval(in, l) {
			v |= 1 << uint(i)
		}
	}
	if v >= 1<<(len(x)-1) {
		v -= 1 << len(x)
	}
	return v
}

// mkInputs allocates two symbolic words and an assignment for (a, b).
func mkInputs(bld *Builder, a, b int64) (Word, Word, map[Lit]bool) {
	x, y := bld.InputW(w), bld.InputW(w)
	in := map[Lit]bool{}
	for i := 0; i < w; i++ {
		in[x[i]] = (a>>uint(i))&1 == 1
		in[y[i]] = (b>>uint(i))&1 == 1
	}
	return x, y, in
}

func wrap(v int64) int64 {
	v &= (1 << w) - 1
	if v >= 1<<(w-1) {
		v -= 1 << w
	}
	return v
}

func TestAddSubMulProperty(t *testing.T) {
	f := func(a, b int8) bool {
		av, bv := int64(a)&((1<<w)-1), int64(b)&((1<<w)-1)
		bld := NewBuilder()
		x, y, in := mkInputs(bld, av, bv)
		if evalW(bld, in, bld.AddW(x, y)) != wrap(av+bv) {
			return false
		}
		if evalW(bld, in, bld.SubW(x, y)) != wrap(av-bv) {
			return false
		}
		return evalW(bld, in, bld.MulW(x, y)) == wrap(av*bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareProperty(t *testing.T) {
	f := func(a, b int8) bool {
		av, bv := wrap(int64(a)), wrap(int64(b))
		bld := NewBuilder()
		x, y, in := mkInputs(bld, av&((1<<w)-1), bv&((1<<w)-1))
		if bld.Eval(in, bld.EqW(x, y)) != (av == bv) {
			return false
		}
		return bld.Eval(in, bld.LtS(x, y)) == (av < bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDivModProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		av := int64(a) & ((1 << w) - 1)
		bv := int64(b) & ((1 << w) - 1)
		if bv == 0 {
			return true
		}
		bld := NewBuilder()
		x, y, in := mkInputs(bld, av, bv)
		q, r := bld.DivModU(x, y)
		qv := int64(0)
		for i, l := range q {
			if bld.Eval(in, l) {
				qv |= 1 << uint(i)
			}
		}
		rv := int64(0)
		for i, l := range r {
			if bld.Eval(in, l) {
				rv |= 1 << uint(i)
			}
		}
		return qv == av/bv && rv == av%bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMuxAndConstFold(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	if b.And(x, True) != x || b.And(x, False) != False {
		t.Fatal("And folding broken")
	}
	if b.Or(x, False) != x || b.Or(x, True) != True {
		t.Fatal("Or folding broken")
	}
	if b.And(x, x.Not()) != False {
		t.Fatal("contradiction not folded")
	}
	if b.Mux(True, x, x.Not()) != x || b.Mux(False, x, x.Not()) != x.Not() {
		t.Fatal("Mux folding broken")
	}
}

func TestStructuralHashing(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	n1 := b.And(x, y)
	n2 := b.And(y, x)
	if n1 != n2 {
		t.Fatal("And not commutatively hashed")
	}
	before := b.NumNodes()
	b.And(x, y)
	if b.NumNodes() != before {
		t.Fatal("duplicate node created")
	}
}

func TestConstWConstVal(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 15, -16, 7} {
		wd := ConstW(5, v)
		got, ok := ConstVal(wd)
		if !ok || got != wrap5(v) {
			t.Fatalf("v=%d got=%d ok=%v", v, got, ok)
		}
	}
}

func wrap5(v int64) int64 {
	v &= 31
	if v >= 16 {
		v -= 32
	}
	return v
}

// Tseitin soundness: for random circuits, SAT models forced by pinning
// the output must agree with direct evaluation.
func TestTseitinAgreesWithEval(t *testing.T) {
	f := func(ops []uint8, inBits uint8) bool {
		b := NewBuilder()
		var ins []Lit
		for i := 0; i < 4; i++ {
			ins = append(ins, b.Input())
		}
		nodes := append([]Lit{}, ins...)
		for _, op := range ops {
			if len(ops) > 24 {
				ops = ops[:24]
			}
			a := nodes[int(op)%len(nodes)]
			c := nodes[int(op/8)%len(nodes)]
			switch op % 3 {
			case 0:
				nodes = append(nodes, b.And(a, c))
			case 1:
				nodes = append(nodes, b.Or(a, c.Not()))
			default:
				nodes = append(nodes, b.Xor(a, c))
			}
		}
		out := nodes[len(nodes)-1]
		in := map[Lit]bool{}
		for i, l := range ins {
			in[l] = (inBits>>uint(i))&1 == 1
		}
		want := b.Eval(in, out)

		s := sat.New()
		m := NewVarMap()
		ol := b.ToSAT(s, m, out)
		// Pin the inputs and check the forced output value.
		var assume []sat.Lit
		for _, l := range ins {
			v := b.SATVar(s, m, l)
			assume = append(assume, sat.MkLit(v, !in[l]))
		}
		if !s.Solve(assume...) {
			return false
		}
		got := s.Value(ol.Var()) != ol.Neg()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
