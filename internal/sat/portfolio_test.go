package sat

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// pigeonholeAdder encodes n+1 pigeons / n holes (UNSAT) into any Adder.
func pigeonholeAdder(s Adder, n int) {
	vars := make([][]int, n+1)
	for p := range vars {
		vars[p] = make([]int, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
}

func TestPortfolioPigeonhole(t *testing.T) {
	for _, n := range []int{4, 6} {
		p := NewPortfolio(4)
		pigeonholeAdder(p, n)
		if p.Solve() {
			t.Fatalf("pigeonhole(%d): expected UNSAT", n)
		}
	}
}

// The portfolio must agree with the single solver on random instances,
// and SAT models must actually satisfy the clauses.
func TestPortfolioMatchesSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		ref := New()
		p := NewPortfolio(4)
		nv := 25
		for i := 0; i < nv; i++ {
			ref.NewVar()
			p.NewVar()
		}
		var clauses [][]Lit
		for i := 0; i < 100; i++ {
			c := []Lit{
				MkLit(rng.Intn(nv), rng.Intn(2) == 0),
				MkLit(rng.Intn(nv), rng.Intn(2) == 0),
				MkLit(rng.Intn(nv), rng.Intn(2) == 0),
			}
			clauses = append(clauses, c)
			ref.AddClause(c...)
			p.AddClause(c...)
		}
		want := ref.Solve()
		got := p.Solve()
		if got != want {
			t.Fatalf("iter %d: portfolio=%v solver=%v", iter, got, want)
		}
		if !got {
			continue
		}
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if p.Value(l.Var()) != l.Neg() {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("portfolio model does not satisfy clause %v", c)
			}
		}
	}
}

// Incremental portfolio use across Solve calls, with assumptions, the
// way the CEGIS loop drives it.
func TestPortfolioIncremental(t *testing.T) {
	p := NewPortfolio(3)
	a, b, c := p.NewVar(), p.NewVar(), p.NewVar()
	p.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b
	p.AddClause(MkLit(b, true), MkLit(c, false)) // b -> c
	if !p.Solve(MkLit(a, false)) {
		t.Fatal("expected SAT under a")
	}
	if !p.Value(b) || !p.Value(c) {
		t.Fatal("implication chain not propagated in winner's model")
	}
	p.AddClause(MkLit(c, true)) // !c
	if p.Solve(MkLit(a, false)) {
		t.Fatal("expected UNSAT under a")
	}
	if !p.Solve(MkLit(a, true)) {
		t.Fatal("expected SAT under !a")
	}
	if !p.Solve() {
		t.Fatal("expected SAT with no assumptions")
	}
	st := p.WorkerStats()
	if len(st) != 3 {
		t.Fatalf("want 3 worker stats, got %d", len(st))
	}
	var wins int64
	for _, w := range st {
		wins += w.Wins
	}
	if wins != 4 {
		t.Fatalf("4 solves should record 4 wins, got %d", wins)
	}
}

// A 1-worker portfolio must behave bit-for-bit like the plain solver:
// same verdicts, same model, same conflict/decision counts.
func TestPortfolioSingleWorkerDeterminism(t *testing.T) {
	ref := New()
	p := NewPortfolio(1)
	pigeonholeAdder(ref, 6)
	pigeonholeAdder(p, 6)
	if ref.Solve() || p.Solve() {
		t.Fatal("expected UNSAT")
	}
	if ref.Stats != p.ws[0].Stats {
		t.Fatalf("1-worker portfolio diverged from solver:\n%+v\n%+v", ref.Stats, p.ws[0].Stats)
	}
}

// Cancellation must abort an in-flight solve and leave the solver
// usable and sound afterwards.
func TestSolveCancel(t *testing.T) {
	s := New()
	pigeonholeAdder(s, 8) // hard enough (~0.5s) to outlive the cancel signal
	var cancel atomic.Bool
	done := make(chan bool)
	go func() {
		_, canceled := s.SolveCancel(&cancel, MkLit(0, false))
		done <- canceled
	}()
	time.Sleep(time.Millisecond)
	cancel.Store(true)
	select {
	case canceled := <-done:
		if !canceled {
			// The solve legitimately finished before the signal; the
			// verdict path is covered elsewhere.
			t.Log("solve finished before cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unwind the solve")
	}
	// The solver must still reach the sound verdict afterwards.
	if s.Solve() {
		t.Fatal("pigeonhole(8): expected UNSAT after canceled solve")
	}
}
