package sat

import (
	"math/rand"
	"testing"
)

func TestSharedPoolFetchSkipsOwn(t *testing.T) {
	p := &sharedPool{}
	p.publish(0, []Lit{MkLit(0, false)})
	p.publish(1, []Lit{MkLit(1, false)})
	p.publish(0, []Lit{MkLit(2, false)})

	got, cur := p.fetch(0, 0)
	if len(got) != 1 || got[0][0] != MkLit(1, false) {
		t.Fatalf("worker 0 should fetch only worker 1's clause, got %v", got)
	}
	if cur != 3 {
		t.Fatalf("cursor should advance to 3, got %d", cur)
	}
	// Nothing new since the cursor.
	got, cur = p.fetch(cur, 0)
	if len(got) != 0 || cur != 3 {
		t.Fatalf("expected empty fetch at cursor, got %v cur=%d", got, cur)
	}
	// A different consumer sees worker 0's two clauses.
	got, _ = p.fetch(0, 1)
	if len(got) != 2 {
		t.Fatalf("worker 1 should fetch 2 clauses, got %d", len(got))
	}
}

// A consumer that falls more than shareCap behind silently loses the
// overwritten clauses instead of reading torn ring slots.
func TestSharedPoolOverflow(t *testing.T) {
	p := &sharedPool{}
	total := shareCap + 100
	for i := 0; i < total; i++ {
		p.publish(1, []Lit{MkLit(i, false)})
	}
	got, cur := p.fetch(0, 0)
	if len(got) != shareCap {
		t.Fatalf("stale consumer should see exactly the ring, got %d", len(got))
	}
	if got[0][0] != MkLit(total-shareCap, false) {
		t.Fatalf("oldest surviving clause wrong: %v", got[0])
	}
	if cur != uint64(total) {
		t.Fatalf("cursor should jump to %d, got %d", total, cur)
	}
	if p.published() != uint64(total) {
		t.Fatalf("published()=%d, want %d", p.published(), total)
	}
}

// White-box: a solver attached to a pool imports foreign clauses at
// solve entry, counts them, and treats imported units as forcing.
func TestSolverImportsShared(t *testing.T) {
	pool := &sharedPool{}
	s := New()
	s.shared, s.sharedID = pool, 0
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))

	pool.publish(1, []Lit{MkLit(a, true)}) // foreign unit: !a
	if !s.Solve() {
		t.Fatal("expected SAT")
	}
	if s.Value(a) {
		t.Fatal("imported unit !a must force a=false")
	}
	if s.Stats.Imported != 1 {
		t.Fatalf("Imported=%d, want 1", s.Stats.Imported)
	}

	// A contradicting foreign unit makes the formula UNSAT on import.
	pool.publish(1, []Lit{MkLit(b, true)})
	if s.Solve() {
		t.Fatal("expected UNSAT after importing !b")
	}
}

// End-to-end: on a hard instance the sharing portfolio actually
// exchanges clauses, and its verdict stays sound.
func TestPortfolioSharingExchangesClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPortfolio(4)
	if !p.Sharing() {
		t.Fatal("multi-worker portfolio should share by default")
	}
	nv := 120
	for i := 0; i < nv; i++ {
		p.NewVar()
	}
	// Near the 3-SAT phase transition: plenty of conflicts and short
	// learnt clauses on every worker.
	for i := 0; i < int(4.2*float64(nv)); i++ {
		p.AddClause(
			MkLit(rng.Intn(nv), rng.Intn(2) == 0),
			MkLit(rng.Intn(nv), rng.Intn(2) == 0),
			MkLit(rng.Intn(nv), rng.Intn(2) == 0),
		)
	}
	p.Solve()
	// Solve again so even a race won before the first restart has an
	// import opportunity at solve entry.
	p.Solve()
	var exported, imported int64
	for _, w := range p.WorkerStats() {
		exported += w.Exported
		imported += w.Imported
	}
	if exported == 0 {
		t.Fatal("no worker exported any clause")
	}
	if imported == 0 {
		t.Fatal("no worker imported any clause")
	}
	if uint64(exported) != p.pool.published() {
		t.Fatalf("Exported sum %d != pool published %d", exported, p.pool.published())
	}
}

// SetSharing(false) must detach the pool so ablation runs are clean.
func TestPortfolioSetSharing(t *testing.T) {
	p := NewPortfolio(2)
	p.SetSharing(false)
	if p.Sharing() {
		t.Fatal("sharing should be off")
	}
	for _, w := range p.ws {
		if w.shared != nil {
			t.Fatal("worker still attached to pool")
		}
	}
	pigeonholeAdder(p, 6)
	if p.Solve() {
		t.Fatal("expected UNSAT")
	}
	for _, w := range p.WorkerStats() {
		if w.Exported != 0 || w.Imported != 0 {
			t.Fatalf("sharing disabled but stats moved: %+v", w)
		}
	}
	p.SetSharing(true)
	if !p.Sharing() {
		t.Fatal("sharing should be back on")
	}
	// 1-worker portfolios never share.
	q := NewPortfolio(1)
	q.SetSharing(true)
	if q.Sharing() {
		t.Fatal("1-worker portfolio must not create a pool")
	}
}

// The batch path must be behavior-identical to serial AddClause.
func TestAddClausesMatchesAddClause(t *testing.T) {
	build := func(add func(s Adder, cs [][]Lit)) *Solver {
		s := New()
		for i := 0; i < 9; i++ {
			s.NewVar()
		}
		var cs [][]Lit
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 40; i++ {
			c := []Lit{
				MkLit(rng.Intn(9), rng.Intn(2) == 0),
				MkLit(rng.Intn(9), rng.Intn(2) == 0),
			}
			cs = append(cs, c)
		}
		add(s, cs)
		return s
	}
	serial := build(func(s Adder, cs [][]Lit) {
		for _, c := range cs {
			s.AddClause(c...)
		}
	})
	batch := build(func(s Adder, cs [][]Lit) {
		var lits []Lit
		var ends []int
		for _, c := range cs {
			lits = append(lits, c...)
			ends = append(ends, len(lits))
		}
		s.(BatchAdder).AddClauses(lits, ends)
	})
	sv, bv := serial.Solve(), batch.Solve()
	if sv != bv {
		t.Fatalf("verdicts diverge: serial=%v batch=%v", sv, bv)
	}
	if serial.Stats != batch.Stats {
		t.Fatalf("batch add diverged from serial:\n%+v\n%+v", serial.Stats, batch.Stats)
	}
}

// Alloc-tracked broadcast of a projection-sized clause batch into a
// 4-worker portfolio: batch vs. per-clause calls.
func BenchmarkPortfolioAddClauses(b *testing.B) {
	const nv, ncl = 256, 64
	mk := func() (*Portfolio, []Lit, []int) {
		p := NewPortfolio(4)
		for i := 0; i < nv; i++ {
			p.NewVar()
		}
		rng := rand.New(rand.NewSource(9))
		var lits []Lit
		var ends []int
		for i := 0; i < ncl; i++ {
			for j := 0; j < 3; j++ {
				lits = append(lits, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
			}
			ends = append(ends, len(lits))
		}
		return p, lits, ends
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, lits, ends := mk()
			p.AddClauses(lits, ends)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, lits, ends := mk()
			start := 0
			for _, e := range ends {
				p.AddClause(lits[start:e]...)
				start = e
			}
		}
	})
}

// White-box boundary check of the export quality gates: a clause of
// exactly shareMaxLen literals or exactly shareMaxLBD distinct levels
// is exported; one past either cap is not.
func TestExportLearntBoundaries(t *testing.T) {
	mk := func() *Solver {
		s := New()
		for i := 0; i < 16; i++ {
			s.NewVar()
		}
		s.shared, s.sharedID = &sharedPool{}, 0
		return s
	}
	clause := func(n int) []Lit {
		lits := make([]Lit, n)
		for i := range lits {
			lits[i] = MkLit(i, false)
		}
		return lits
	}

	// Length gate. All vars unassigned → one decision level → LBD 1,
	// so only the length cap is in play.
	s := mk()
	s.exportLearnt(clause(shareMaxLen))
	if s.Stats.Exported != 1 || s.shared.published() != 1 {
		t.Fatalf("len=%d clause must export: Exported=%d", shareMaxLen, s.Stats.Exported)
	}
	s.exportLearnt(clause(shareMaxLen + 1))
	if s.Stats.Exported != 1 || s.shared.published() != 1 {
		t.Fatalf("len=%d clause must not export: Exported=%d", shareMaxLen+1, s.Stats.Exported)
	}

	// LBD gate: spread a short clause's vars over controlled decision
	// levels. shareMaxLBD distinct levels pass, one more is refused.
	s = mk()
	lits := clause(shareMaxLBD + 1)
	for i, l := range lits {
		s.level[l.Var()] = int32(i) // levels 0..shareMaxLBD → LBD = shareMaxLBD+1
	}
	if got := s.lbd(lits); got != shareMaxLBD+1 {
		t.Fatalf("lbd=%d, want %d", got, shareMaxLBD+1)
	}
	s.exportLearnt(lits)
	if s.Stats.Exported != 0 {
		t.Fatalf("LBD=%d clause must not export", shareMaxLBD+1)
	}
	s.level[lits[len(lits)-1].Var()] = 0 // merge one level → LBD = shareMaxLBD
	if got := s.lbd(lits); got != shareMaxLBD {
		t.Fatalf("lbd=%d, want %d", got, shareMaxLBD)
	}
	s.exportLearnt(lits)
	if s.Stats.Exported != 1 {
		t.Fatalf("LBD=%d clause must export", shareMaxLBD)
	}
}

// The cross-cube bus must refuse any clause mentioning a variable at
// or beyond the shared-prefix boundary, and count only relayed ones.
func TestBusPrefixFilter(t *testing.T) {
	b := NewBus(3) // shared prefix: vars 0,1,2
	if !b.Publish(0, []Lit{MkLit(0, false), MkLit(2, true)}) {
		t.Fatal("in-prefix clause refused")
	}
	if b.Publish(0, []Lit{MkLit(0, false), MkLit(3, true)}) {
		t.Fatal("clause with var 3 must be refused at maxVar=3")
	}
	if b.Published() != 1 {
		t.Fatalf("Published=%d, want 1", b.Published())
	}
	if b.MaxVar() != 3 {
		t.Fatalf("MaxVar=%d, want 3", b.MaxVar())
	}
	// Fetch skips the caller's own cube but serves others.
	if got, _ := b.Fetch(0, 0); len(got) != 0 {
		t.Fatalf("origin cube re-fetched its own clause: %v", got)
	}
	got, cur := b.Fetch(0, 1)
	if len(got) != 1 || cur != 1 {
		t.Fatalf("other cube should fetch 1 clause, got %d cur=%d", len(got), cur)
	}

	// A solver wired to the bus applies the same filter at export time:
	// the pool takes the clause, the bus refuses it.
	s := New()
	for i := 0; i < 8; i++ {
		s.NewVar()
	}
	s.shared, s.sharedID = &sharedPool{}, 0
	s.bus, s.busID = NewBus(2), 5
	s.exportLearnt([]Lit{MkLit(0, false), MkLit(4, true)})
	if s.Stats.Exported != 1 {
		t.Fatalf("pool export missing: %d", s.Stats.Exported)
	}
	if s.Stats.BusExported != 0 || s.bus.Published() != 0 {
		t.Fatal("bus must refuse out-of-prefix clause")
	}
	s.exportLearnt([]Lit{MkLit(0, false), MkLit(1, true)})
	if s.Stats.BusExported != 1 || s.bus.Published() != 1 {
		t.Fatalf("in-prefix clause not relayed: BusExported=%d", s.Stats.BusExported)
	}
}

// FetchTagged preserves producer origins (the multi-process relay
// depends on them to avoid echoing clauses back) and clamps a stale
// cursor to the surviving ring just like fetch.
func TestBusFetchTagged(t *testing.T) {
	b := NewBus(8)
	b.Publish(2, []Lit{MkLit(0, false)})
	b.Publish(7, []Lit{MkLit(1, true)})
	got, cur := b.FetchTagged(0)
	if len(got) != 2 || cur != 2 {
		t.Fatalf("got %d clauses cur=%d, want 2/2", len(got), cur)
	}
	if got[0].Origin != 2 || got[1].Origin != 7 {
		t.Fatalf("origins %d,%d, want 2,7", got[0].Origin, got[1].Origin)
	}
	if got[1].Lits[0] != MkLit(1, true) {
		t.Fatalf("lits not preserved: %v", got[1].Lits)
	}
	// Overflow: a consumer more than shareCap behind sees only the ring.
	for i := 0; i < shareCap+10; i++ {
		b.Publish(1, []Lit{MkLit(i%8, false)})
	}
	got, cur = b.FetchTagged(0)
	if len(got) != shareCap {
		t.Fatalf("stale FetchTagged returned %d, want %d", len(got), shareCap)
	}
	if cur != uint64(2+shareCap+10) {
		t.Fatalf("cursor=%d, want %d", cur, 2+shareCap+10)
	}
}
