package sat

import (
	"math/rand"
	"testing"

	"psketch/internal/drat"
)

// clauseAdder lets the pigeonhole encoder target both the plain solver
// and the portfolio.
type clauseAdder interface {
	NewVar() int
	AddClause(lits ...Lit) bool
}

// addPigeonhole encodes PHP(pigeons, holes): every pigeon sits in some
// hole, no two pigeons share one. UNSAT iff pigeons > holes, and the
// refutation is never pure unit propagation, so the proof must carry
// real lemmas.
func addPigeonhole(s clauseAdder, pigeons, holes int) {
	vars := make([][]int, pigeons)
	for p := range vars {
		vars[p] = make([]int, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		var c []Lit
		for h := 0; h < holes; h++ {
			c = append(c, MkLit(vars[p][h], false))
		}
		s.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
}

func TestSolverProofPigeonhole(t *testing.T) {
	s := New()
	r := drat.NewRecorder()
	s.SetProof(r)
	addPigeonhole(s, 6, 5)
	if s.Solve() {
		t.Fatal("PHP(6,5) reported SAT")
	}
	cert := r.Certificate(nil)
	stats, err := cert.Verify()
	if err != nil {
		t.Fatalf("UNSAT certificate rejected: %v", err)
	}
	if stats.Checked == 0 {
		t.Fatal("PHP refutation verified without checking any lemma")
	}
	t.Logf("lemmas=%d checked=%d core=%d props=%d", stats.Lemmas, stats.Checked, stats.Core, stats.Propagations)
}

func TestPortfolioProofPigeonhole(t *testing.T) {
	for _, sharing := range []bool{true, false} {
		p := NewPortfolio(4)
		p.SetSharing(sharing)
		r := drat.NewRecorder()
		p.SetProof(r)
		addPigeonhole(p, 6, 5)
		if p.Solve() {
			t.Fatalf("PHP(6,5) reported SAT (sharing=%v)", sharing)
		}
		if _, err := r.Certificate(nil).Verify(); err != nil {
			t.Fatalf("merged portfolio certificate rejected (sharing=%v): %v", sharing, err)
		}
	}
}

func TestProofUnderAssumptions(t *testing.T) {
	// (¬a ∨ b) ∧ (¬b ∨ c) is satisfiable, but not under a ∧ ¬c.
	s := New()
	r := drat.NewRecorder()
	s.SetProof(r)
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	assume := []Lit{MkLit(a, false), MkLit(c, true)}
	if s.Solve(assume...) {
		t.Fatal("expected UNSAT under assumptions")
	}
	dim := []int{Dimacs(assume[0]), Dimacs(assume[1])}
	if _, err := r.Certificate(dim).Verify(); err != nil {
		t.Fatalf("assumption certificate rejected: %v", err)
	}
	// The formula itself is satisfiable: with sound lemmas only, the
	// empty clause cannot close without the assumption units.
	if _, err := r.Certificate(nil).Verify(); err == nil {
		t.Fatal("satisfiable formula certified without its assumptions")
	}
	// The solver stays usable and the recorder keeps accruing.
	if !s.Solve() {
		t.Fatal("formula should be satisfiable without assumptions")
	}
}

// Every UNSAT verdict on random CNFs must replay — solo and portfolio,
// with clause sharing on. SAT verdicts are cross-checked by brute force
// so the test also guards against proof hooks corrupting search.
func TestRandomProofsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20080613))
	unsats := 0
	for iter := 0; iter < 200; iter++ {
		nv := 3 + rng.Intn(7)
		nc := 5 + rng.Intn(35)
		var clauses [][]Lit
		for i := 0; i < nc; i++ {
			width := 1 + rng.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				c = append(c, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
		}
		want := bruteForce(nv, clauses)

		s := New()
		r := drat.NewRecorder()
		s.SetProof(r)
		p := NewPortfolio(3)
		pr := drat.NewRecorder()
		p.SetProof(pr)
		for i := 0; i < nv; i++ {
			s.NewVar()
			p.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
			p.AddClause(c...)
		}
		if got := s.Solve(); got != want {
			t.Fatalf("iter %d: solo verdict %v, brute force %v", iter, got, want)
		}
		if got := p.Solve(); got != want {
			t.Fatalf("iter %d: portfolio verdict %v, brute force %v", iter, got, want)
		}
		if !want {
			unsats++
			if _, err := r.Certificate(nil).Verify(); err != nil {
				t.Fatalf("iter %d: solo certificate rejected: %v", iter, err)
			}
			if _, err := pr.Certificate(nil).Verify(); err != nil {
				t.Fatalf("iter %d: portfolio certificate rejected: %v", iter, err)
			}
		}
	}
	if unsats == 0 {
		t.Fatal("random instances produced no UNSAT cases; test is vacuous")
	}
	t.Logf("verified %d UNSAT certificates", unsats)
}

// Incremental CEGIS usage: clauses arrive between solves and the
// recorder spans the whole lifetime; the certificate taken at the final
// UNSAT must verify.
func TestIncrementalProof(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	verified := 0
	for iter := 0; iter < 60 && verified < 10; iter++ {
		nv := 4 + rng.Intn(5)
		s := New()
		r := drat.NewRecorder()
		s.SetProof(r)
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		for round := 0; round < 8; round++ {
			for k := 0; k < 1+rng.Intn(4); k++ {
				width := 1 + rng.Intn(3)
				var c []Lit
				for j := 0; j < width; j++ {
					c = append(c, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
				}
				s.AddClause(c...)
			}
			if !s.Solve() {
				if _, err := r.Certificate(nil).Verify(); err != nil {
					t.Fatalf("iter %d round %d: incremental certificate rejected: %v", iter, round, err)
				}
				verified++
				break
			}
		}
	}
	if verified == 0 {
		t.Fatal("no incremental runs went UNSAT; test is vacuous")
	}
}
