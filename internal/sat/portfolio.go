package sat

import (
	"sync"
	"sync/atomic"

	"psketch/internal/drat"
	"psketch/internal/obs"
)

// WorkerStats summarizes one portfolio worker's lifetime work.
type WorkerStats struct {
	Wins         int64 // races this worker answered first
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Exported     int64 // learnt clauses published to the shared pool
	Imported     int64 // shared clauses adopted from other workers
	BusExported  int64 // learnt clauses relayed to the cross-cube bus
	BusImported  int64 // bus clauses adopted from other cubes
}

// Portfolio races N diversified CDCL solvers on the same formula.
// NewVar and AddClause broadcast to every worker, so variable indices
// and the clause set stay aligned; each worker keeps its own learnt
// clauses, activities and saved phases across Solve calls, which is
// what makes the portfolio incremental across CEGIS iterations.
//
// Workers additionally exchange short, low-LBD learned clauses through
// a bounded shared pool: a worker exports on learning (under the
// length/LBD caps of share.go) and imports everyone else's exports at
// its restart boundaries, so diversified searches stop rediscovering
// each other's conflicts. Sharing is sound — learned clauses are
// implied by the common problem clauses alone — and can be disabled
// with SetSharing(false) for ablation. A 1-worker portfolio never
// creates a pool.
//
// Solve runs every worker in its own goroutine under a shared
// cancellation token; the first worker to reach a verdict wins, the
// rest are canceled and joined before Solve returns. Both verdicts are
// sound for every worker (the workers solve the same clause set; level-0
// units learned by one worker are implied for all), so whichever
// finishes first may answer. With one worker no goroutines are spawned
// and the behaviour is bit-for-bit the plain Solver's.
type Portfolio struct {
	ws     []*Solver
	pool   *sharedPool
	winner int
	wins   []int64

	// Tracing (see trace.go): nil tr disables; spanParent is the span
	// the next solve's "sat.solve" span nests under.
	tr         *obs.Tracer
	spanParent obs.SpanID
}

// NewPortfolio returns a portfolio of n diversified workers (n < 1 is
// treated as 1) with clause sharing enabled. Worker 0 always runs the
// default configuration.
func NewPortfolio(n int) *Portfolio {
	if n < 1 {
		n = 1
	}
	p := &Portfolio{ws: make([]*Solver, n), wins: make([]int64, n), winner: -1}
	for i := range p.ws {
		p.ws[i] = NewWith(DiverseConfig(i))
	}
	if n > 1 {
		p.pool = &sharedPool{}
		for i, w := range p.ws {
			w.shared, w.sharedID = p.pool, i
		}
	}
	return p
}

// SetSharing enables or disables the learned-clause pool. Call between
// Solve calls only. Disabling drops the pool reference but keeps
// clauses already imported (they are implied, so they stay sound).
func (p *Portfolio) SetSharing(on bool) {
	if len(p.ws) == 1 {
		return
	}
	if !on {
		p.pool = nil
		for _, w := range p.ws {
			w.shared = nil
		}
		return
	}
	if p.pool == nil {
		p.pool = &sharedPool{}
	}
	for i, w := range p.ws {
		w.shared, w.sharedID = p.pool, i
	}
}

// Sharing reports whether the learned-clause pool is active.
func (p *Portfolio) Sharing() bool { return p.pool != nil }

// SetProof attaches one DRAT proof sink to every worker. The
// underlying recorder's mutex linearizes the workers' learnt clauses
// into a single merged derivation; only worker 0 logs problem clauses
// (AddClause broadcasts the identical stream to every worker, so one
// copy suffices), and the recorder drops per-worker deletions once more
// than one solver is attached. Call before adding clauses.
func (p *Portfolio) SetProof(r drat.Sink) {
	for i, w := range p.ws {
		w.proof = r
		w.proofPremises = i == 0
		if r != nil {
			r.Attach()
		}
	}
}

// SetBus connects every worker to the cross-cube clause bus as members
// of cube id: each worker exports its own prefix-only learnt clauses
// and imports other cubes' at restart boundaries, while skipping
// clauses its own cube published (intra-cube exchange stays the shared
// pool's job). Call between Solve calls only.
func (p *Portfolio) SetBus(b *Bus, id int) {
	for _, w := range p.ws {
		w.SetBus(b, id)
	}
}

// NumWorkers returns the portfolio size.
func (p *Portfolio) NumWorkers() int { return len(p.ws) }

// NumVars returns the number of allocated variables.
func (p *Portfolio) NumVars() int { return p.ws[0].NumVars() }

// NumClauses returns the number of problem clauses.
func (p *Portfolio) NumClauses() int { return p.ws[0].NumClauses() }

// NewVar allocates the same fresh variable in every worker.
func (p *Portfolio) NewVar() int {
	v := p.ws[0].NewVar()
	for _, w := range p.ws[1:] {
		w.NewVar()
	}
	return v
}

// AddClause broadcasts a problem clause. It returns false as soon as
// any worker can show the formula unsatisfiable (workers may diverge
// on when they notice, having learned different level-0 units).
func (p *Portfolio) AddClause(lits ...Lit) bool {
	ok := true
	for _, w := range p.ws {
		if !w.AddClause(lits...) {
			ok = false
		}
	}
	return ok
}

// AddClauses broadcasts a batch of clauses (flat literals + end
// offsets) worker-major: each worker consumes the whole batch in order
// before the next worker starts, so one batch touches each worker's
// assignment and watch arrays once instead of once per clause. The
// per-worker clause stream is identical to repeated AddClause calls.
func (p *Portfolio) AddClauses(lits []Lit, ends []int) bool {
	ok := true
	for _, w := range p.ws {
		if !w.AddClauses(lits, ends) {
			ok = false
		}
	}
	return ok
}

// Solve races the workers under the given assumptions. The winning
// worker's model is the one Value reads afterwards.
func (p *Portfolio) Solve(assumptions ...Lit) bool {
	ok, _ := p.SolveCancel(nil, assumptions...)
	return ok
}

// SolveCancel is Solve with an external cancellation token: when
// another goroutine sets cancel, every worker unwinds and SolveCancel
// returns canceled=true with no verdict (unless some worker had already
// answered, in which case its verdict stands). The portfolio stays
// incremental either way. This is how the pipelined CEGIS loop tears
// down a speculative solve the verifier has made moot.
func (p *Portfolio) SolveCancel(cancel *atomic.Bool, assumptions ...Lit) (sat, canceled bool) {
	if len(p.ws) == 1 {
		ok, canceled := p.ws[0].SolveCancel(cancel, assumptions...)
		if canceled {
			return false, true
		}
		p.winner = 0
		p.wins[0]++
		return ok, false
	}
	sp := p.tr.Start("sat.solve", p.spanParent)
	if sp.Active() {
		// Repoint before the goroutines launch; workers are quiescent.
		for _, w := range p.ws {
			w.spanParent = sp.ID()
		}
	}
	var won atomic.Bool
	type answer struct {
		worker int
		sat    bool
	}
	ch := make(chan answer, len(p.ws))
	var wg sync.WaitGroup
	for i, w := range p.ws {
		wg.Add(1)
		go func(i int, w *Solver) {
			defer wg.Done()
			ok, canceled := w.SolveCancel2(&won, cancel, assumptions...)
			if !canceled {
				ch <- answer{i, ok}
				won.Store(true)
			}
		}(i, w)
	}
	// Join every worker before returning so the caller may immediately
	// AddClause or re-Solve: the portfolio is quiescent between calls.
	wg.Wait()
	close(ch)
	// The race-winner token is only set after a send, so the first
	// finisher is never canceled by it; the channel is empty only when
	// the external token canceled every worker first.
	a, ok := <-ch
	if !ok {
		if sp.Active() {
			sp.End(obs.Int("workers", int64(len(p.ws))), obs.Int("canceled", 1))
		}
		return false, true
	}
	p.winner = a.worker
	p.wins[a.worker]++
	if sp.Active() {
		sp.End(obs.Int("workers", int64(len(p.ws))),
			obs.Int("winner", int64(a.worker)),
			obs.Int("sat", boolInt(a.sat)))
	}
	return a.sat, false
}

// Value returns the winning worker's model value for a variable.
func (p *Portfolio) Value(v int) bool {
	if p.winner < 0 {
		return false
	}
	return p.ws[p.winner].Value(v)
}

// Conflicts returns the conflicts summed over all workers.
func (p *Portfolio) Conflicts() int64 {
	var n int64
	for _, w := range p.ws {
		n += w.Stats.Conflicts
	}
	return n
}

// WorkerStats returns per-worker lifetime statistics (the per-worker
// columns of the Figure 9 regeneration).
func (p *Portfolio) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(p.ws))
	for i, w := range p.ws {
		out[i] = WorkerStats{
			Wins:         p.wins[i],
			Conflicts:    w.Stats.Conflicts,
			Decisions:    w.Stats.Decisions,
			Propagations: w.Stats.Propagations,
			Restarts:     w.Stats.Restarts,
			Exported:     w.Stats.Exported,
			Imported:     w.Stats.Imported,
			BusExported:  w.Stats.BusExported,
			BusImported:  w.Stats.BusImported,
		}
	}
	return out
}
