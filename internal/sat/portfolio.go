package sat

import (
	"sync"
	"sync/atomic"
)

// WorkerStats summarizes one portfolio worker's lifetime work.
type WorkerStats struct {
	Wins         int64 // races this worker answered first
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
}

// Portfolio races N diversified CDCL solvers on the same formula.
// NewVar and AddClause broadcast to every worker, so variable indices
// and the clause set stay aligned; each worker keeps its own learnt
// clauses, activities and saved phases across Solve calls, which is
// what makes the portfolio incremental across CEGIS iterations.
//
// Solve runs every worker in its own goroutine under a shared
// cancellation token; the first worker to reach a verdict wins, the
// rest are canceled and joined before Solve returns. Both verdicts are
// sound for every worker (the workers solve the same clause set; level-0
// units learned by one worker are implied for all), so whichever
// finishes first may answer. With one worker no goroutines are spawned
// and the behaviour is bit-for-bit the plain Solver's.
type Portfolio struct {
	ws     []*Solver
	winner int
	wins   []int64
}

// NewPortfolio returns a portfolio of n diversified workers (n < 1 is
// treated as 1). Worker 0 always runs the default configuration.
func NewPortfolio(n int) *Portfolio {
	if n < 1 {
		n = 1
	}
	p := &Portfolio{ws: make([]*Solver, n), wins: make([]int64, n), winner: -1}
	for i := range p.ws {
		p.ws[i] = NewWith(DiverseConfig(i))
	}
	return p
}

// NumWorkers returns the portfolio size.
func (p *Portfolio) NumWorkers() int { return len(p.ws) }

// NumVars returns the number of allocated variables.
func (p *Portfolio) NumVars() int { return p.ws[0].NumVars() }

// NumClauses returns the number of problem clauses.
func (p *Portfolio) NumClauses() int { return p.ws[0].NumClauses() }

// NewVar allocates the same fresh variable in every worker.
func (p *Portfolio) NewVar() int {
	v := p.ws[0].NewVar()
	for _, w := range p.ws[1:] {
		w.NewVar()
	}
	return v
}

// AddClause broadcasts a problem clause. It returns false as soon as
// any worker can show the formula unsatisfiable (workers may diverge
// on when they notice, having learned different level-0 units).
func (p *Portfolio) AddClause(lits ...Lit) bool {
	ok := true
	for _, w := range p.ws {
		if !w.AddClause(lits...) {
			ok = false
		}
	}
	return ok
}

// Solve races the workers under the given assumptions. The winning
// worker's model is the one Value reads afterwards.
func (p *Portfolio) Solve(assumptions ...Lit) bool {
	if len(p.ws) == 1 {
		p.winner = 0
		p.wins[0]++
		return p.ws[0].Solve(assumptions...)
	}
	var cancel atomic.Bool
	type answer struct {
		worker int
		sat    bool
	}
	ch := make(chan answer, len(p.ws))
	var wg sync.WaitGroup
	for i, w := range p.ws {
		wg.Add(1)
		go func(i int, w *Solver) {
			defer wg.Done()
			ok, canceled := w.SolveCancel(&cancel, assumptions...)
			if !canceled {
				ch <- answer{i, ok}
				cancel.Store(true)
			}
		}(i, w)
	}
	// Join every worker before returning so the caller may immediately
	// AddClause or re-Solve: the portfolio is quiescent between calls.
	wg.Wait()
	close(ch)
	// At least one answer exists: the token is only set after a send,
	// so the first finisher is never canceled. The first answer sent is
	// the race winner.
	a := <-ch
	p.winner = a.worker
	p.wins[a.worker]++
	return a.sat
}

// Value returns the winning worker's model value for a variable.
func (p *Portfolio) Value(v int) bool {
	if p.winner < 0 {
		return false
	}
	return p.ws[p.winner].Value(v)
}

// Conflicts returns the conflicts summed over all workers.
func (p *Portfolio) Conflicts() int64 {
	var n int64
	for _, w := range p.ws {
		n += w.Stats.Conflicts
	}
	return n
}

// WorkerStats returns per-worker lifetime statistics (the per-worker
// columns of the Figure 9 regeneration).
func (p *Portfolio) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(p.ws))
	for i, w := range p.ws {
		out[i] = WorkerStats{
			Wins:         p.wins[i],
			Conflicts:    w.Stats.Conflicts,
			Decisions:    w.Stats.Decisions,
			Propagations: w.Stats.Propagations,
			Restarts:     w.Stats.Restarts,
		}
	}
	return out
}
