package sat

import (
	"sync/atomic"
	"time"

	"psketch/internal/obs"
)

// Observability wiring. A Solver (or every worker of a Portfolio)
// carries an optional tracer; with one attached, each solve emits a
// span with the solver-work deltas of that call (conflicts, decisions,
// propagations, pool exchange). With no tracer the solve path is
// untouched — one nil check per Solve call.
//
// The span parent is plain state set between solves: solver ownership
// already alternates strictly (the CEGIS driver or the speculative
// goroutine, never both), and the portfolio repoints its workers before
// launching the race goroutines.

// SetTracer attaches tr (nil disables tracing). Call between solves.
func (s *Solver) SetTracer(tr *obs.Tracer) {
	s.tr = tr
	if s.spanName == "" {
		s.spanName = "sat.solve"
	}
}

// SetSpanParent sets the span the next solves nest under.
func (s *Solver) SetSpanParent(p obs.SpanID) { s.spanParent = p }

// SetTracer attaches tr to the portfolio and all its workers (nil
// disables tracing). Multi-worker solves emit a "sat.solve" span with
// one "sat.worker" child per racing worker; a 1-worker portfolio emits
// just the plain solver's "sat.solve".
func (p *Portfolio) SetTracer(tr *obs.Tracer) {
	p.tr = tr
	for _, w := range p.ws {
		w.tr = tr
		w.spanName = "sat.worker"
	}
	if len(p.ws) == 1 {
		p.ws[0].spanName = "sat.solve"
	}
}

// SetSpanParent sets the span the portfolio's next solves nest under.
func (p *Portfolio) SetSpanParent(sp obs.SpanID) {
	p.spanParent = sp
	if len(p.ws) == 1 {
		p.ws[0].spanParent = sp
	}
}

// SolveCancel2 is SolveCancel with two independent cancellation tokens
// (either one stops the search). The portfolio uses this to combine its
// internal race-winner token with an external caller token without an
// intermediary goroutine.
func (s *Solver) SolveCancel2(cancel, cancel2 *atomic.Bool, assumptions ...Lit) (sat, canceled bool) {
	if s.tr == nil {
		return s.solveCancel2(cancel, cancel2, assumptions...)
	}
	sp := s.tr.Start(s.spanName, s.spanParent)
	before := s.Stats
	t0 := time.Now()
	sat, canceled = s.solveCancel2(cancel, cancel2, assumptions...)
	sp.EndDur(time.Since(t0),
		obs.Int("worker", int64(s.sharedID)),
		obs.Int("sat", boolInt(sat)),
		obs.Int("canceled", boolInt(canceled)),
		obs.Int("conflicts", s.Stats.Conflicts-before.Conflicts),
		obs.Int("decisions", s.Stats.Decisions-before.Decisions),
		obs.Int("propagations", s.Stats.Propagations-before.Propagations),
		obs.Int("exported", s.Stats.Exported-before.Exported),
		obs.Int("imported", s.Stats.Imported-before.Imported))
	return sat, canceled
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
