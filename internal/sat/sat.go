// Package sat is a from-scratch CDCL SAT solver: two-watched literals,
// first-UIP clause learning with recursive minimization, VSIDS-style
// activity with phase saving, and Luby restarts. It replaces the
// external SAT solver the SKETCH infrastructure delegated to (§5, §9:
// "delegates the effort of conducting an effective search to an
// efficient, general purpose SAT-based solver").
//
// The interface is incremental: clauses may be added between Solve
// calls, and Solve accepts assumptions, which is how the CEGIS loop
// grows the observation set one counterexample at a time.
//
// # Concurrency contract
//
// A Solver is NOT goroutine-safe: all methods must be called from one
// goroutine at a time. The only cross-goroutine interaction is the
// cancellation token passed to SolveCancel — another goroutine may set
// it to make an in-flight solve return early (soundly: a canceled
// solve reports neither SAT nor UNSAT, and the solver remains usable
// for further AddClause/Solve calls).
//
// Portfolio races N diversified Solver instances (varied polarity
// defaults, VSIDS decay, Luby restart unit, and random-seeded branching
// tie-breaks) over the same clause set; the first definitive answer
// wins and cancels the rest. Each worker keeps its own learnt-clause
// database across calls, so portfolio state is incremental per worker
// across CEGIS iterations. A 1-worker Portfolio is bit-for-bit the
// plain Solver. Portfolio itself follows the same external contract as
// Solver: one caller goroutine; the internal worker goroutines exist
// only inside Solve and have all joined by the time it returns.
package sat

import (
	"sort"
	"sync/atomic"

	"psketch/internal/drat"
	"psketch/internal/obs"
)

// Adder is the clause-construction half of the solver interface, the
// part the Tseitin encoder needs. Both Solver and Portfolio implement
// it (a Portfolio broadcasts to every worker, keeping variable indices
// aligned across them).
type Adder interface {
	NewVar() int
	AddClause(lits ...Lit) bool
}

// BatchAdder is the bulk-insertion extension of Adder: AddClauses takes
// many clauses at once as a flat literal slice plus end offsets (clause
// i is lits[ends[i-1]:ends[i]], with ends[-1] = 0). A Portfolio
// processes the whole batch worker-major — each worker consumes the
// clauses in order before the next worker starts — which touches every
// worker's watch/assignment arrays once per batch instead of once per
// clause. The per-worker clause stream is identical to repeated
// AddClause calls, so behaviour (including the -j 1 bit-for-bit
// contract) is unchanged. Returns false as soon as any insertion
// reports unsatisfiability.
type BatchAdder interface {
	Adder
	AddClauses(lits []Lit, ends []int) bool
}

// Config diversifies a solver instance for portfolio solving. The zero
// value is not meaningful; start from DefaultConfig.
type Config struct {
	// DefaultPolarity is the initial saved phase of fresh variables:
	// true branches the variable to false first (the MiniSat default).
	DefaultPolarity bool
	// VarDecay is the VSIDS variable-activity decay divisor (0 < d < 1;
	// smaller decays faster).
	VarDecay float64
	// ClaDecay is the clause-activity decay divisor.
	ClaDecay float64
	// LubyUnit is the number of conflicts per Luby restart unit.
	LubyUnit int
	// Seed seeds the xorshift generator for random branching
	// tie-breaks; 0 disables randomness entirely.
	Seed uint64
	// RandFreq is the fraction of branching decisions taken on a
	// uniformly random unassigned variable instead of the VSIDS pick.
	RandFreq float64
}

// DefaultConfig returns the configuration of New — the behaviour every
// sequential (-j 1) run reproduces.
func DefaultConfig() Config {
	return Config{DefaultPolarity: true, VarDecay: 0.95, ClaDecay: 0.999, LubyUnit: 100}
}

// DiverseConfig returns the configuration of portfolio worker i.
// Worker 0 is always DefaultConfig, so the portfolio's first worker
// explores exactly the sequential solver's search tree.
func DiverseConfig(i int) Config {
	cfg := DefaultConfig()
	if i == 0 {
		return cfg
	}
	cfg.DefaultPolarity = i%2 == 0
	decays := []float64{0.91, 0.97, 0.93, 0.99, 0.85, 0.95}
	cfg.VarDecay = decays[(i-1)%len(decays)]
	units := []int{50, 200, 100, 400, 150, 75}
	cfg.LubyUnit = units[(i-1)%len(units)]
	// splitmix64 of the worker index: distinct, deterministic seeds.
	z := uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	cfg.Seed = z ^ (z >> 31)
	cfg.RandFreq = 0.02
	return cfg
}

// Lit is a literal: variable v (0-based) encodes as 2v (positive) or
// 2v+1 (negated).
type Lit int32

// MkLit builds a literal from a variable index and sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assigns  []lbool
	level    []int32
	reason   []*clause
	activity []float64
	polarity []bool // saved phases
	seen     []byte

	trail    []Lit
	trailLim []int32
	qhead    int
	model    []lbool

	order   *varHeap
	varInc  float64
	claInc  float64
	ok      bool
	scratch []Lit

	cfg      Config
	rngState uint64
	cancel   *atomic.Bool // read-only here; set by SolveCancel's caller
	cancel2  *atomic.Bool // second token (portfolio race + external cancel)

	// Clause sharing (portfolio members only; nil otherwise): the pool,
	// this worker's identity in it, and the fetch cursor.
	shared      *sharedPool
	sharedID    int
	shareCursor uint64

	// Cross-cube clause bus (cube-and-conquer members only; nil
	// otherwise): relays prefix-only clauses between solver groups, see
	// Bus. busID is the cube this solver belongs to.
	bus       *Bus
	busID     int
	busCursor uint64

	// DRAT proof logging (nil when disabled): every learnt clause is
	// stamped into the sink before it is exported to the shared
	// pool or the cube bus, so a recorder shared by portfolio workers
	// (or, through per-cube drat.Namespaces, by whole cube groups)
	// linearizes the merged derivation (see internal/drat).
	// proofPremises marks the one solver of a recorder-sharing group
	// that logs problem clauses (all portfolio workers receive the same
	// broadcast).
	proof         drat.Sink
	proofPremises bool
	dimacsBuf     []int

	// Tracing (nil tr when disabled; see trace.go). spanName lets a
	// portfolio rename its workers' spans to "sat.worker".
	tr         *obs.Tracer
	spanName   string
	spanParent obs.SpanID

	// Stats counts solver work for the Figure 9 columns.
	Stats struct {
		Conflicts    int64
		Decisions    int64
		Propagations int64
		Restarts     int64
		Learned      int64
		Reduces      int64
		Exported     int64 // learnt clauses published to the shared pool
		Imported     int64 // shared clauses adopted from other workers
		BusExported  int64 // learnt clauses relayed to the cross-cube bus
		BusImported  int64 // bus clauses adopted from other cubes
	}
}

// New returns an empty solver with the default configuration.
func New() *Solver { return NewWith(DefaultConfig()) }

// NewWith returns an empty solver with the given configuration.
func NewWith(cfg Config) *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true, cfg: cfg, rngState: cfg.Seed}
	s.order = &varHeap{s: s}
	return s
}

// Dimacs converts a literal to the DIMACS convention internal/drat
// uses: variable v as ±(v+1).
func Dimacs(l Lit) int {
	if l.Neg() {
		return -(l.Var() + 1)
	}
	return l.Var() + 1
}

// dimacs converts a clause into the scratch buffer (the recorder
// copies what it is handed).
func (s *Solver) dimacs(lits []Lit) []int {
	out := s.dimacsBuf[:0]
	for _, l := range lits {
		out = append(out, Dimacs(l))
	}
	s.dimacsBuf = out
	return out
}

// SetProof attaches a DRAT proof sink (a drat.Recorder, or a
// drat.Namespace of a shared one in cube mode): from now on every
// problem clause is logged as a premise and every learnt clause as a
// lemma, so UNSAT verdicts can be replayed through
// drat.Certificate.Verify. Attach the sink before adding clauses;
// clauses added earlier are missing from the log and the replay of a
// later UNSAT verdict may fail. Portfolio workers share one sink via
// Portfolio.SetProof instead.
func (s *Solver) SetProof(r drat.Sink) {
	s.proof = r
	s.proofPremises = true
	if r != nil {
		r.Attach()
	}
}

// SetBus connects the solver to the cross-cube clause bus as a member
// of cube id. Call between Solve calls only.
func (s *Solver) SetBus(b *Bus, id int) {
	s.bus, s.busID = b, id
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, s.cfg.DefaultPolarity) // true = branch false first
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Neg() {
		return v.neg()
	}
	return v
}

// Value returns the model value of a variable after a SAT result.
func (s *Solver) Value(v int) bool {
	return v < len(s.model) && s.model[v] == lTrue
}

// AddClause adds a problem clause. It returns false if the formula is
// already unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during solving")
	}
	// Log the clause as given — normalization below is itself a derived
	// fact (level-0 units), which the proof checker re-derives.
	if s.proof != nil && s.proofPremises {
		s.proof.AddPremise(s.dimacs(lits))
	}
	// Normalize: drop duplicate/false literals, detect tautologies.
	out := s.scratch[:0]
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			s.scratch = out
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				s.scratch = out
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	s.scratch = out
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// AddClauses adds a batch of clauses (flat literals + end offsets),
// equivalent to calling AddClause on each in order.
func (s *Solver) AddClauses(lits []Lit, ends []int) bool {
	ok := true
	start := 0
	for _, end := range ends {
		if !s.AddClause(lits[start:end]...) {
			ok = false
		}
		start = end
	}
	return ok
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.valueLit(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					continue nextWatch
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.valueLit(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	first := true

	for {
		s.bumpClause(confl)
		for j := 0; j < len(confl.lits); j++ {
			q := confl.lits[j]
			if !first && j == 0 {
				continue // skip the asserting literal of the reason
			}
			if first || q != p {
				v := q.Var()
				if s.seen[v] == 0 && s.level[v] > 0 {
					s.seen[v] = 1
					s.bumpVar(v)
					if int(s.level[v]) >= s.decisionLevel() {
						counter++
					} else {
						learnt = append(learnt, q)
					}
				}
			}
		}
		// Select next literal to look at.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		counter--
		first = false
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Minimize: drop literals implied by the rest of the clause. Keep
	// the pre-minimization list so every seen flag is cleared below.
	full := append([]Lit(nil), learnt...)
	out := learnt[:1]
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.reason[v] == nil || !s.redundant(learnt[i], learnt) {
			out = append(out, learnt[i])
		}
	}
	learnt = out

	// Compute backtrack level = second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	// Clear seen flags (including literals dropped by minimization).
	for _, l := range full {
		s.seen[l.Var()] = 0
	}
	return learnt, btLevel
}

// redundant reports whether lit is implied by the other literals of the
// learnt clause (single-step self-subsumption test).
func (s *Solver) redundant(lit Lit, learnt []Lit) bool {
	r := s.reason[lit.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q == lit.Not() {
			continue
		}
		v := q.Var()
		if s.level[v] == 0 {
			continue
		}
		inClause := false
		for _, o := range learnt {
			if o.Var() == v {
				inClause = true
				break
			}
		}
		if !inClause {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lFalse
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, cl := range s.learnts {
			cl.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= s.cfg.VarDecay
	s.claInc /= s.cfg.ClaDecay
}

// nextRand steps the xorshift64 generator (only used when Seed != 0).
func (s *Solver) nextRand() uint64 {
	s.rngState ^= s.rngState << 13
	s.rngState ^= s.rngState >> 7
	s.rngState ^= s.rngState << 17
	return s.rngState
}

// pickBranchVar returns the highest-activity unassigned variable,
// occasionally (RandFreq of the time) a uniformly random one — the
// portfolio's branching tie-break diversification.
func (s *Solver) pickBranchVar() int {
	if s.cfg.Seed != 0 && len(s.order.heap) > 0 &&
		s.nextRand()%10000 < uint64(s.cfg.RandFreq*10000) {
		// Peek a random heap entry without removing it: if it is later
		// popped while assigned it is simply discarded, and backtracking
		// reinserts unassigned variables anyway.
		v := int(s.order.heap[s.nextRand()%uint64(len(s.order.heap))])
		if s.assigns[v] == lUndef {
			return v
		}
	}
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby computes the Luby restart sequence.
func luby(y float64, x int) float64 {
	size, seq := 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x = x % size
	}
	r := 1.0
	for i := 0; i < seq; i++ {
		r *= y
	}
	return r
}

// Solve searches for a model under the given assumptions. It returns
// true (model readable via Value) or false (UNSAT under assumptions).
func (s *Solver) Solve(assumptions ...Lit) bool {
	ok, _ := s.SolveCancel(nil, assumptions...)
	return ok
}

// SolveCancel is Solve with a cancellation token: when another
// goroutine sets cancel, the search unwinds at its next check and
// SolveCancel returns canceled=true with no verdict. The solver stays
// consistent and incremental — canceled solves keep their learnt
// clauses and may be re-solved or extended afterwards. A nil cancel is
// never checked.
func (s *Solver) SolveCancel(cancel *atomic.Bool, assumptions ...Lit) (sat, canceled bool) {
	return s.SolveCancel2(cancel, nil, assumptions...)
}

// solveCancel2 is the uninstrumented solve loop behind SolveCancel2
// (trace.go), which wraps it in a span when a tracer is attached.
func (s *Solver) solveCancel2(cancel, cancel2 *atomic.Bool, assumptions ...Lit) (sat, canceled bool) {
	if !s.ok {
		return false, false
	}
	s.cancel, s.cancel2 = cancel, cancel2
	defer func() {
		s.cancel, s.cancel2 = nil, nil
		s.backtrackTo(0)
	}()

	restarts := 0
	for {
		// Restart boundaries (and solve entry) are the import points for
		// pool clauses: the solver is at level 0, so normalization and
		// unit propagation are valid.
		if !s.importShared() {
			return false, false
		}
		confl := s.search(int(luby(2, restarts)*float64(s.cfg.LubyUnit)), assumptions)
		switch confl {
		case satisfied:
			s.model = append(s.model[:0], s.assigns...)
			return true, false
		case unsatisfiable:
			return false, false
		case canceledRes:
			return false, true
		}
		restarts++
		s.Stats.Restarts++
		s.backtrackTo(0)
		// Keep the learned-clause database bounded: CEGIS solves the
		// same growing instance many times, and stale low-activity
		// lemmas otherwise dominate propagation cost.
		if len(s.learnts) > 4000+s.NumClauses()/2 {
			s.reduceDB()
		}
	}
}

// exportLearnt publishes a freshly learned clause to the shared pool
// and the cross-cube bus when it passes the length and LBD quality
// gates (the bus additionally refuses clauses mentioning variables
// outside the shared prefix). The caller has already stamped the
// clause into the proof sink, so importers elsewhere always find it in
// the merged derivation.
func (s *Solver) exportLearnt(learnt []Lit) {
	if s.shared == nil && s.bus == nil {
		return
	}
	if len(learnt) > shareMaxLen || s.lbd(learnt) > shareMaxLBD {
		return
	}
	if s.shared != nil {
		s.shared.publish(s.sharedID, learnt)
		s.Stats.Exported++
	}
	if s.bus != nil && s.bus.Publish(s.busID, learnt) {
		s.Stats.BusExported++
	}
}

// lbd computes the literal-block distance of a clause: the number of
// distinct decision levels among its (currently assigned) literals.
func (s *Solver) lbd(lits []Lit) int {
	n := 0
	for i, l := range lits {
		lv := s.level[l.Var()]
		dup := false
		for _, m := range lits[:i] {
			if s.level[m.Var()] == lv {
				dup = true
				break
			}
		}
		if !dup {
			n++
		}
	}
	return n
}

// importShared adopts every pool and bus clause published since the
// last import (skipping this worker's own pool exports and its cube's
// bus exports). Must be called at decision level 0. Returns false when
// an import reveals the formula unsatisfiable.
func (s *Solver) importShared() bool {
	if s.shared != nil {
		cls, next := s.shared.fetch(s.shareCursor, s.sharedID)
		s.shareCursor = next
		for _, lits := range cls {
			if !s.addImported(lits, &s.Stats.Imported) {
				s.ok = false
				return false
			}
		}
	}
	if s.bus != nil {
		cls, next := s.bus.Fetch(s.busCursor, s.busID)
		s.busCursor = next
		for _, lits := range cls {
			if !s.addImported(lits, &s.Stats.BusImported) {
				s.ok = false
				return false
			}
		}
	}
	return true
}

// addImported installs one shared clause as a learnt clause: satisfied
// clauses are skipped, level-0-false literals dropped, units enqueued
// and propagated. The clause is implied by the problem clauses (see
// sharedPool and Bus), so all outcomes — including a propagation
// conflict, which proves UNSAT — are sound. counter is the Stats field
// credited on adoption.
func (s *Solver) addImported(lits []Lit, counter *int64) bool {
	out := s.scratch[:0]
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			s.scratch = out
			return true
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	s.scratch = out
	*counter++
	switch len(out) {
	case 0:
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		return s.propagate() == nil
	}
	c := &clause{lits: append([]Lit(nil), out...), learnt: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return true
}

// Conflicts returns the total conflicts seen, for stats reporting.
func (s *Solver) Conflicts() int64 { return s.Stats.Conflicts }

// reduceDB drops the lower-activity half of the learned clauses
// (keeping binary clauses and clauses currently used as reasons) and
// rebuilds the watcher lists.
func (s *Solver) reduceDB() {
	if s.decisionLevel() != 0 {
		return
	}
	locked := map[*clause]bool{}
	for v := range s.assigns {
		if s.reason[v] != nil {
			locked[s.reason[v]] = true
		}
	}
	sorted := append([]*clause(nil), s.learnts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].activity < sorted[j].activity })
	drop := map[*clause]bool{}
	for _, c := range sorted[:len(sorted)/2] {
		if len(c.lits) > 2 && !locked[c] {
			drop[c] = true
		}
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !drop[c] {
			kept = append(kept, c)
		} else if s.proof != nil {
			// The recorder drops per-worker deletions when the proof is
			// shared by a portfolio (the merged database still holds the
			// clause); solo proofs keep them as real DRAT "d" lines.
			s.proof.DeleteLemma(s.dimacs(c.lits))
		}
	}
	s.learnts = kept
	// Rebuild watches from scratch.
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.attach(c)
	}
	for _, c := range s.learnts {
		s.attach(c)
	}
	s.Stats.Reduces++
}

type searchResult int

const (
	sResTimeout searchResult = iota
	satisfied
	unsatisfiable
	canceledRes
)

func (s *Solver) search(maxConflicts int, assumptions []Lit) searchResult {
	conflicts := 0
	for {
		if (s.cancel != nil && s.cancel.Load()) || (s.cancel2 != nil && s.cancel2.Load()) {
			return canceledRes
		}
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return unsatisfiable
			}
			learnt, btLevel := s.analyze(confl)
			// Stamp the lemma into the proof BEFORE exporting it: an
			// importer's later lemmas must sort after it in the merged
			// derivation order (internal/drat).
			if s.proof != nil {
				s.proof.AddLemma(s.dimacs(learnt))
			}
			// Export before backtracking: the LBD quality gate needs the
			// decision levels the literals were learned at.
			s.exportLearnt(learnt)
			// Backtracking may drop below the assumption levels; the
			// no-conflict branch re-establishes assumptions and reports
			// UNSAT if one has become false.
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				if s.valueLit(learnt[0]) == lFalse {
					return unsatisfiable
				}
				if s.valueLit(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], nil)
				}
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true}
				s.learnts = append(s.learnts, c)
				s.Stats.Learned++
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(c.lits[0], c)
			}
			s.decayActivities()
			if conflicts >= maxConflicts {
				return sResTimeout
			}
			continue
		}
		// No conflict: extend assumptions, then decide.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already satisfied: open an empty level to keep the
				// level/assumption correspondence.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				return unsatisfiable
			}
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.uncheckedEnqueue(a, nil)
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return satisfied
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), nil)
	}
}

// ------------------------------------------------------------- varHeap

// varHeap is a binary max-heap on variable activity.
type varHeap struct {
	s       *Solver
	heap    []int32
	indices []int32 // var -> heap position + 1 (0 = absent)
}

func (h *varHeap) less(a, b int32) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) insert(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, int32(v))
	h.indices[v] = int32(len(h.heap))
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] != 0 {
		h.up(int(h.indices[v]) - 1)
	}
}

func (h *varHeap) pop() int {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[top] = 0
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 1
		h.down(0)
	}
	return int(top)
}

func (h *varHeap) up(i int) {
	x := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(x, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = int32(i + 1)
		i = p
	}
	h.heap[i] = x
	h.indices[x] = int32(i + 1)
}

func (h *varHeap) down(i int) {
	x := h.heap[i]
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.heap) {
			break
		}
		c := l
		if r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], x) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[c]] = int32(i + 1)
		i = c
	}
	h.heap[i] = x
	h.indices[x] = int32(i + 1)
}
