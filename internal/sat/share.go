package sat

import "sync"

// Clause-sharing parameters: a worker exports a freshly learned clause
// when it is short (few literals) and high quality (low LBD — literals
// spanning few decision levels propagate soon after import). The pool
// is a bounded ring, so a slow consumer loses old clauses instead of
// stalling producers or growing memory without bound.
const (
	// shareMaxLen is the literal-count cap for exported clauses.
	shareMaxLen = 8
	// shareMaxLBD is the LBD (distinct-decision-level) cap.
	shareMaxLBD = 4
	// shareCap is the ring capacity; a worker that falls further behind
	// than this simply misses the overwritten clauses.
	shareCap = 4096
)

// sharedClause is one pooled learnt clause, tagged with its producer so
// workers never reimport their own exports.
type sharedClause struct {
	lits   []Lit
	origin int
}

// sharedPool is the portfolio's bounded exchange of short learned
// clauses. Producers publish under a mutex; consumers fetch every
// clause published since their cursor. All pooled clauses are implied
// by the problem clauses alone (first-UIP learning resolves only on
// reason clauses, so assumptions surface as literals, never as hidden
// premises), and every portfolio worker holds the same problem clauses
// over the same variable numbering, so imports are sound for everyone.
type sharedPool struct {
	mu   sync.Mutex
	ring [shareCap]sharedClause
	next uint64 // total clauses ever published
}

// publish stores a copy of lits in the ring.
func (p *sharedPool) publish(origin int, lits []Lit) {
	cp := append([]Lit(nil), lits...)
	p.mu.Lock()
	p.ring[p.next%shareCap] = sharedClause{lits: cp, origin: origin}
	p.next++
	p.mu.Unlock()
}

// fetch returns the clauses published at sequence numbers [from, next)
// that did not originate from worker self, plus the new cursor. Clauses
// overwritten since from (consumer more than shareCap behind) are
// skipped. The returned slices are immutable after publish and may be
// retained by the caller.
func (p *sharedPool) fetch(from uint64, self int) ([][]Lit, uint64) {
	p.mu.Lock()
	next := p.next
	if next-from > shareCap {
		from = next - shareCap
	}
	var out [][]Lit
	for i := from; i < next; i++ {
		c := p.ring[i%shareCap]
		if c.origin != self {
			out = append(out, c.lits)
		}
	}
	p.mu.Unlock()
	return out, next
}

// published returns the total number of clauses ever published (tests
// and stats only).
func (p *sharedPool) published() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// Bus is the cross-cube generalization of the portfolio pool: a
// bounded broadcast exchange between solver GROUPS that share only a
// variable-numbering prefix, not a full clause database. Cube-and-
// conquer CEGIS (internal/cube) encodes the same sketch in every cube,
// so the setup variables — hole bits and structural constraints — are
// a deterministic common prefix; everything above it (per-cube
// projection Tseitin variables) means different things in different
// cubes. Publish therefore refuses any clause mentioning a variable at
// or beyond the prefix boundary: what remains is a clause over shared
// vocabulary, implied by problem clauses common to every cube (cube
// membership is enforced by Solve assumptions, never clauses, so
// learnt clauses carry no hidden cube premises — see
// ARCHITECTURE.md), and is sound for every other cube to adopt.
//
// Origins are cube IDs: every solver of one cube publishes and fetches
// under its cube's ID, so a cube never reimports its own exports
// (intra-cube exchange is the portfolio pool's job). The same
// length/LBD quality gates of the pool apply before Publish is ever
// called.
type Bus struct {
	maxVar int
	pool   sharedPool
}

// NewBus returns a bus that relays only clauses whose variables all
// lie in the shared prefix [0, maxVar).
func NewBus(maxVar int) *Bus {
	return &Bus{maxVar: maxVar}
}

// MaxVar returns the shared-prefix bound.
func (b *Bus) MaxVar() int { return b.maxVar }

// Publish offers a clause to every other cube. It reports whether the
// clause was relayed (false when any literal lies outside the shared
// prefix).
func (b *Bus) Publish(origin int, lits []Lit) bool {
	for _, l := range lits {
		if l.Var() >= b.maxVar {
			return false
		}
	}
	b.pool.publish(origin, lits)
	return true
}

// Fetch returns the clauses published since cursor from that did not
// originate from cube self, plus the new cursor.
func (b *Bus) Fetch(from uint64, self int) ([][]Lit, uint64) {
	return b.pool.fetch(from, self)
}

// TaggedClause pairs a relayed clause with its origin cube (the
// multi-process relay of internal/cube preserves origins across the
// wire so nothing is ever echoed back to its producer).
type TaggedClause struct {
	Origin int
	Lits   []Lit
}

// FetchTagged returns every clause published since cursor from with
// its origin, plus the new cursor; the caller does its own origin
// filtering.
func (b *Bus) FetchTagged(from uint64) ([]TaggedClause, uint64) {
	p := &b.pool
	p.mu.Lock()
	next := p.next
	if next-from > shareCap {
		from = next - shareCap
	}
	var out []TaggedClause
	for i := from; i < next; i++ {
		c := p.ring[i%shareCap]
		out = append(out, TaggedClause{Origin: c.origin, Lits: c.lits})
	}
	p.mu.Unlock()
	return out, next
}

// Published returns the total number of clauses ever relayed.
func (b *Bus) Published() uint64 { return b.pool.published() }
