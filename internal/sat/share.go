package sat

import "sync"

// Clause-sharing parameters: a worker exports a freshly learned clause
// when it is short (few literals) and high quality (low LBD — literals
// spanning few decision levels propagate soon after import). The pool
// is a bounded ring, so a slow consumer loses old clauses instead of
// stalling producers or growing memory without bound.
const (
	// shareMaxLen is the literal-count cap for exported clauses.
	shareMaxLen = 8
	// shareMaxLBD is the LBD (distinct-decision-level) cap.
	shareMaxLBD = 4
	// shareCap is the ring capacity; a worker that falls further behind
	// than this simply misses the overwritten clauses.
	shareCap = 4096
)

// sharedClause is one pooled learnt clause, tagged with its producer so
// workers never reimport their own exports.
type sharedClause struct {
	lits   []Lit
	origin int
}

// sharedPool is the portfolio's bounded exchange of short learned
// clauses. Producers publish under a mutex; consumers fetch every
// clause published since their cursor. All pooled clauses are implied
// by the problem clauses alone (first-UIP learning resolves only on
// reason clauses, so assumptions surface as literals, never as hidden
// premises), and every portfolio worker holds the same problem clauses
// over the same variable numbering, so imports are sound for everyone.
type sharedPool struct {
	mu   sync.Mutex
	ring [shareCap]sharedClause
	next uint64 // total clauses ever published
}

// publish stores a copy of lits in the ring.
func (p *sharedPool) publish(origin int, lits []Lit) {
	cp := append([]Lit(nil), lits...)
	p.mu.Lock()
	p.ring[p.next%shareCap] = sharedClause{lits: cp, origin: origin}
	p.next++
	p.mu.Unlock()
}

// fetch returns the clauses published at sequence numbers [from, next)
// that did not originate from worker self, plus the new cursor. Clauses
// overwritten since from (consumer more than shareCap behind) are
// skipped. The returned slices are immutable after publish and may be
// retained by the caller.
func (p *sharedPool) fetch(from uint64, self int) ([][]Lit, uint64) {
	p.mu.Lock()
	next := p.next
	if next-from > shareCap {
		from = next - shareCap
	}
	var out [][]Lit
	for i := from; i < next; i++ {
		c := p.ring[i%shareCap]
		if c.origin != self {
			out = append(out, c.lits)
		}
	}
	p.mu.Unlock()
	return out, next
}

// published returns the total number of clauses ever published (tests
// and stats only).
func (p *sharedPool) published() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}
