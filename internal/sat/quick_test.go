package sat

import (
	"math/rand"
	"testing"
)

// bruteForce decides satisfiability of a small CNF by enumeration.
func bruteForce(nv int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := (m>>uint(l.Var()))&1 == 1
				if bit != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// The solver's verdict must agree with brute force on random small
// instances, and its models must satisfy every clause.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		nv := 3 + rng.Intn(8)
		nc := 1 + rng.Intn(30)
		if !check(t, rng, nv, nc) {
			t.Fatalf("disagreement at iter %d", iter)
		}
	}
}

func check(t *testing.T, rng *rand.Rand, nv, nc int) bool {
	t.Helper()
	s := New()
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	var clauses [][]Lit
	for i := 0; i < nc; i++ {
		width := 1 + rng.Intn(3)
		var c []Lit
		for j := 0; j < width; j++ {
			c = append(c, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
		}
		clauses = append(clauses, c)
		s.AddClause(c...)
	}
	got := s.Solve()
	want := bruteForce(nv, clauses)
	if got != want {
		t.Logf("nv=%d clauses=%v: solver=%v brute=%v", nv, clauses, got, want)
		return false
	}
	if got {
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if s.Value(l.Var()) != l.Neg() {
					ok = true
					break
				}
			}
			if !ok {
				t.Logf("model violates clause %v", c)
				return false
			}
		}
	}
	return true
}

// Incremental use: adding clauses between solves must preserve
// correctness (CEGIS's usage pattern).
func TestIncrementalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 100; iter++ {
		nv := 4 + rng.Intn(6)
		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		for round := 0; round < 6; round++ {
			for k := 0; k < 1+rng.Intn(4); k++ {
				width := 1 + rng.Intn(3)
				var c []Lit
				for j := 0; j < width; j++ {
					c = append(c, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
				}
				clauses = append(clauses, c)
				s.AddClause(c...)
			}
			if s.Solve() != bruteForce(nv, clauses) {
				t.Fatalf("incremental disagreement (iter %d round %d)", iter, round)
			}
		}
	}
}

// Assumptions: UNSAT under assumptions must not poison later solves.
func TestAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		nv := 4 + rng.Intn(5)
		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		for k := 0; k < 3+rng.Intn(10); k++ {
			width := 1 + rng.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				c = append(c, MkLit(rng.Intn(nv), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		for round := 0; round < 4; round++ {
			a := MkLit(rng.Intn(nv), rng.Intn(2) == 0)
			got := s.Solve(a)
			want := bruteForce(nv, append(append([][]Lit{}, clauses...), []Lit{a}))
			if got != want {
				t.Fatalf("assumption disagreement (iter %d)", iter)
			}
		}
		if s.Solve() != bruteForce(nv, clauses) {
			t.Fatalf("post-assumption disagreement (iter %d)", iter)
		}
	}
}
