package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true))
	if !s.Solve() {
		t.Fatal("expected SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("bad model a=%v b=%v", s.Value(a), s.Value(b))
	}
	s.AddClause(MkLit(b, true))
	if s.Solve() {
		t.Fatal("expected UNSAT")
	}
}

// pigeonhole n+1 pigeons, n holes: UNSAT.
func pigeonhole(t *testing.T, n int) {
	s := New()
	vars := make([][]int, n+1)
	for p := range vars {
		vars[p] = make([]int, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
	if s.Solve() {
		t.Fatalf("pigeonhole(%d): expected UNSAT", n)
	}
}

func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 7; n++ {
		pigeonhole(t, n)
	}
}

// Random 3-SAT at low clause density must be SAT and the model must
// satisfy every clause.
func TestRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		s := New()
		nv := 30
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		nc := 90
		for i := 0; i < nc; i++ {
			c := []Lit{
				MkLit(rng.Intn(nv), rng.Intn(2) == 0),
				MkLit(rng.Intn(nv), rng.Intn(2) == 0),
				MkLit(rng.Intn(nv), rng.Intn(2) == 0),
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		if !s.Solve() {
			continue // may be UNSAT; fine
		}
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if s.Value(l.Var()) != l.Neg() {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("model does not satisfy clause %v", c)
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b
	s.AddClause(MkLit(b, true), MkLit(c, false)) // b -> c
	if !s.Solve(MkLit(a, false)) {
		t.Fatal("expected SAT under a")
	}
	if !s.Value(b) || !s.Value(c) {
		t.Fatal("implication chain not propagated")
	}
	s.AddClause(MkLit(c, true)) // !c
	if s.Solve(MkLit(a, false)) {
		t.Fatal("expected UNSAT under a")
	}
	if !s.Solve(MkLit(a, true)) {
		t.Fatal("expected SAT under !a")
	}
	// Incremental reuse after UNSAT-under-assumption.
	if !s.Solve() {
		t.Fatal("expected SAT with no assumptions")
	}
}
