// End-to-end checks for the observability layer: a full queueE2
// synthesis traced into a journal must reconstruct the same per-phase
// wall clock that Stats reports (both are views over the same
// measurements), and heap sampling must stay off the hot path unless
// asked for.
package psketch

import (
	"bytes"
	"fmt"
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/obs"
	"psketch/internal/parser"
	"psketch/internal/sketches"
)

func compileTest(t *testing.T, bm *sketches.Benchmark, test string) *desugar.Sketch {
	t.Helper()
	src, err := bm.Source(test)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", bm.Opts(test))
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// phasePairs maps journal phase tags to the Stats field they must
// agree with.
func phasePairs(st core.Stats) map[string]int64 {
	return map[string]int64{
		obs.PhaseSSolve: int64(st.SSolve),
		obs.PhaseSModel: int64(st.SModel),
		obs.PhaseVSolve: int64(st.VSolve),
		obs.PhaseVModel: int64(st.VModel),
		obs.PhaseSpec:   int64(st.SpecSolve),
	}
}

// TestJournalStatsAgreement runs queueE2 with a journal attached and
// cross-checks the journal three ways against the returned Stats:
// per-phase span totals, the metrics trailer, and the per-iteration
// row count. The tolerance is 1% (the acceptance bar); in practice the
// two views are the same time.Since measurements and agree exactly.
func TestJournalStatsAgreement(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("j%d", par), func(t *testing.T) {
			sk := compileTest(t, sketches.QueueE2(), "ed(ed|ed)")
			var buf bytes.Buffer
			js := obs.NewJournalSink(&buf, map[string]string{"test": "agreement"})
			met := obs.NewMetrics()
			syn, err := core.New(sk, core.Options{
				Parallelism:     par,
				Trace:           obs.NewTracer(js),
				Metrics:         met,
				HeapSampleEvery: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := syn.Synthesize()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resolved {
				t.Fatal("queueE2 ed(ed|ed) must resolve")
			}
			js.WriteMetrics(met.Snapshot())
			if err := js.Close(); err != nil {
				t.Fatal(err)
			}
			j, err := obs.ReadJournalString(buf.String())
			if err != nil {
				t.Fatal(err)
			}

			totals := j.PhaseTotals()
			for phase, want := range phasePairs(res.Stats) {
				got := totals[phase]
				if want == 0 && got == 0 {
					continue
				}
				if drift := got - want; abs64(drift) > want/100 {
					t.Errorf("phase %s: journal %dns vs Stats %dns (drift %dns > 1%%)",
						phase, got, want, drift)
				}
				if mv := j.Metrics[obs.PhaseCounter(phase)]; mv != want {
					t.Errorf("phase %s: metrics trailer %dns vs Stats %dns", phase, mv, want)
				}
			}
			if got := len(obs.IterationRows(j)); got != res.Stats.Iterations {
				t.Errorf("journal has %d iteration spans, Stats.Iterations=%d", got, res.Stats.Iterations)
			}
			if mv := j.Metrics["cegis.iterations"]; mv != int64(res.Stats.Iterations) {
				t.Errorf("metrics iterations %d vs Stats %d", mv, res.Stats.Iterations)
			}
			if mv := j.Metrics["cegis.total_ns"]; mv != int64(res.Stats.Total) {
				t.Errorf("metrics total %dns vs Stats %dns", mv, int64(res.Stats.Total))
			}
			if mv := j.Metrics["mc.states"]; mv != int64(res.Stats.MCStates) {
				t.Errorf("metrics mc.states %d vs Stats %d", mv, res.Stats.MCStates)
			}
			if roots := j.Roots("cegis.synthesize"); len(roots) != 1 {
				t.Errorf("expected one cegis.synthesize root, got %d", len(roots))
			}
		})
	}
}

// TestStatsWithoutTracing pins the no-observability configuration:
// Stats must come out fully populated with a nil Tracer and nil
// Metrics (the registry is created internally).
func TestStatsWithoutTracing(t *testing.T) {
	sk := compileTest(t, sketches.QueueE2(), "ed(ed|ed)")
	syn, err := core.New(sk, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved || res.Stats.Iterations == 0 || res.Stats.Total == 0 {
		t.Fatalf("stats not populated without tracing: %+v", res.Stats)
	}
	if res.Stats.MaxHeap == 0 {
		t.Fatal("final heap sample missing with HeapSampleEvery=0")
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
