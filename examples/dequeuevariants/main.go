// §8.2.1 observes that the sketched single-while-loop Dequeue admits
// several correct implementations with "incomparable performance" —
// e.g. one that advances prevHead lazily and one that advances it
// during the scan — and §8.3.1 suggests producing many candidates and
// picking the best by measurement (autotuning). This example uses
// Enumerate to print several distinct verified Dequeue implementations
// from one sketch.
//
//	go run ./examples/dequeuevariants
package main

import (
	"fmt"
	"log"

	"psketch"
)

const src = `
struct QueueEntry {
	QueueEntry next = null;
	int stored;
	int taken = 0;
}

QueueEntry head0;
QueueEntry prevHead;
QueueEntry tail;
int[3] results;

void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	tmp = AtomicSwap(tail, newEntry);
	tmp.next = newEntry;
}

int Dequeue() {
	QueueEntry tmp = null;
	int taken = 1;
	while (taken == 1) {
		reorder {
			tmp = {| prevHead(.next)?(.next)? |};
			if (tmp == null) { return 0 - 1; }
			prevHead = {| (tmp|prevHead)(.next)? |};
			if (tmp.taken == 0) { taken = AtomicSwap(tmp.taken, 1); }
		}
	}
	return tmp.stored;
}

harness void Main() {
	head0 = new QueueEntry(0);
	head0.taken = 1;
	prevHead = head0;
	tail = head0;
	Enqueue(8);
	results[0] = Dequeue();
	assert results[0] == 8;
	fork (t; 2) {
		if (t == 0) { Enqueue(1); results[1] = Dequeue(); }
		if (t == 1) { Enqueue(2); results[2] = Dequeue(); }
	}
	QueueEntry n = head0;
	int cnt = 0;
	int tcnt = 0;
	bool[12] takenv;
	while (n.next != null) {
		n = n.next;
		cnt = cnt + 1;
		if (n.taken == 1) { tcnt = tcnt + 1; takenv[n.stored] = true; }
	}
	assert cnt == 3;
	assert tail == n;
	assert prevHead.taken == 1;
	int succ = 0;
	if (results[0] != 0 - 1) { succ = succ + 1; assert takenv[results[0]] == true; }
	if (results[1] != 0 - 1) { succ = succ + 1; assert takenv[results[1]] == true; }
	if (results[2] != 0 - 1) { succ = succ + 1; assert takenv[results[2]] == true; }
	assert tcnt == succ;
}
`

func main() {
	sk, err := psketch.Compile(src, "Main", psketch.Options{IntWidth: 6, LoopBound: 5})
	if err != nil {
		log.Fatal(err)
	}
	rs, err := sk.Enumerate(8)
	if err != nil {
		log.Fatal(err)
	}
	// Different hole assignments can fold to the same program text
	// (e.g. two insertion positions encoding one statement order), so
	// deduplicate on the resolved code.
	seen := map[string]bool{}
	n := 0
	for _, r := range rs {
		code, err := sk.ResolveFunc(r.Candidate, "Dequeue")
		if err != nil {
			log.Fatal(err)
		}
		if seen[code] {
			continue
		}
		seen[code] = true
		n++
		fmt.Printf("--- variant %d (%d iterations) ---\n%s\n", n, r.Stats.Iterations, code)
	}
	fmt.Printf("%d distinct verified Dequeue implementations\n", n)
}
