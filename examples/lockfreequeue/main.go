// The paper's headline example (§2): synthesizing the concurrent
// Enqueue of a lock-free queue from the Figure 1 sketch — a "soup" of
// an assignment, an atomic swap, and an optional fixup, reordered by
// the synthesizer, with every location and value drawn from
// regular-expression generators. The sketch denotes 1,975,680 candidate
// programs; the synthesizer finds a correct one from a handful of
// counterexample traces.
//
//	go run ./examples/lockfreequeue
package main

import (
	"fmt"
	"log"

	"psketch"
)

// The queue of the §2 exam problem: PrevHead/Tail pointers, taken
// flags, and an AtomicSwap primitive. Enqueue is the Figure 1 sketch;
// Dequeue is fixed (the resolved Figure 4, made null-safe). The harness
// runs the paper's ed(ed|ed) workload and checks sequential consistency
// through the list structure plus structural integrity.
const src = `
struct QueueEntry {
	QueueEntry next = null;
	int stored;
	int taken = 0;
}

QueueEntry head0;
QueueEntry prevHead;
QueueEntry tail;
int[3] results;

#define aLocation {| tail(.next)? | (tmp|newEntry).next |}
#define aValue {| (tail|tmp|newEntry)(.next)? | null |}
#define anExpr(x,y) {| x==y | x!=y | false |}

void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	reorder {
		aLocation = aValue;
		tmp = AtomicSwap(aLocation, aValue);
		if (anExpr(tmp, aValue)) { aLocation = aValue; }
	}
}

int Dequeue() {
	QueueEntry nextEntry = prevHead.next;
	while (nextEntry != null && AtomicSwap(nextEntry.taken, 1) == 1) {
		nextEntry = nextEntry.next;
	}
	if (nextEntry == null) { return 0 - 1; }
	QueueEntry p = prevHead;
	while (p.next != null && p.next.taken == 1) {
		prevHead = p.next;
		p = p.next;
	}
	return nextEntry.stored;
}

harness void Main() {
	head0 = new QueueEntry(0);
	head0.taken = 1;
	prevHead = head0;
	tail = head0;
	Enqueue(8);
	results[0] = Dequeue();
	assert results[0] == 8;
	fork (t; 2) {
		if (t == 0) { Enqueue(1); results[1] = Dequeue(); }
		if (t == 1) { Enqueue(2); results[2] = Dequeue(); }
	}
	// Structural integrity and accounting: every enqueued value
	// reachable exactly once, tail at the end, no cycles (the walk is
	// bounded), and every successful dequeue took a distinct node.
	// Note: a concurrent dequeue may legitimately return empty while an
	// enqueue is between its swap and its link.
	QueueEntry n = head0;
	int cnt = 0;
	int tcnt = 0;
	bool[12] takenv;
	while (n.next != null) {
		n = n.next;
		cnt = cnt + 1;
		if (n.taken == 1) { tcnt = tcnt + 1; takenv[n.stored] = true; }
	}
	assert cnt == 3;
	assert tail == n;
	assert prevHead.taken == 1;
	int succ = 0;
	if (results[0] != 0 - 1) { succ = succ + 1; assert takenv[results[0]] == true; }
	if (results[1] != 0 - 1) { succ = succ + 1; assert takenv[results[1]] == true; }
	if (results[2] != 0 - 1) { succ = succ + 1; assert takenv[results[2]] == true; }
	assert tcnt == succ;
}
`

func main() {
	sk, err := psketch.Compile(src, "Main", psketch.Options{IntWidth: 6, LoopBound: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the Enqueue sketch denotes %s candidate implementations\n\n", sk.CandidateCount())
	res, err := sk.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Resolved {
		log.Fatal("unexpected: sketch did not resolve")
	}
	code, err := sk.ResolveFunc(res.Candidate, "Enqueue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved in %d iteration(s), %v:\n\n%s",
		res.Stats.Iterations, res.Stats.Total.Round(1000000), code)
}
