// The sense-reversing barrier of §8.2.2: next() is sketched as a soup
// of operations — update the local sense, decrement the yet-to-arrive
// count, conditionally wake everyone up and reset, conditionally wait —
// with every condition a generator predicate and the order left to a
// reorder block. The client forks N threads through B barrier episodes
// and checks that the left neighbour always arrived first.
//
//	go run ./examples/barrier
package main

import (
	"fmt"
	"log"

	"psketch"
)

const src = `
bool sense = false;
bool[2] senses;
int count = 2;
bool[6] reached;

generator bool predicate(int a, int b, bool c, bool d) {
	return {| (!)? (a == b | (a|b) == ??(1) | c | d) |};
}

void next(int th) {
	bool s = senses[th];
	s = predicate(0, 0, s, s);
	int cv = 0;
	bool tmp = false;
	reorder {
		senses[th] = s;
		cv = AtomicReadAndDecr(count);
		tmp = predicate(count, cv, s, tmp);
		if (tmp) {
			reorder {
				count = 2;
				sense = predicate(count, cv, s, s);
			}
		}
		tmp = predicate(count, cv, s, tmp);
		if (tmp) {
			bool t = predicate(0, 0, s, s);
			atomic (sense == t);
		}
	}
}

harness void Main() {
	fork (t; 2) {
		int b = 0;
		while (b < 3) {
			reached[t * 3 + b] = true;
			next(t);
			assert reached[((t + 1) % 2) * 3 + b] == true;
			b = b + 1;
		}
	}
	assert count == 2;
}
`

func main() {
	sk, err := psketch.Compile(src, "Main", psketch.Options{LoopBound: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the barrier sketch denotes %s candidate implementations\n\n", sk.CandidateCount())
	res, err := sk.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Resolved {
		log.Fatal("unexpected: sketch did not resolve")
	}
	code, err := sk.ResolveFunc(res.Candidate, "next")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved in %d iteration(s), %v:\n\n%s",
		res.Stats.Iterations, res.Stats.Total.Round(1000000), code)
}
