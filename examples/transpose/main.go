// The §3 sequential SKETCH example: a matrix transpose built from the
// SIMD semi-permute instruction shufps. The sketch fixes the two-stage
// structure and leaves the number of instructions, the cell ranges and
// the permutation bit vectors to the synthesizer:
//
//	repeat (??) S[??::4] = shuf(M[??::4], M[??::4], ??);
//	repeat (??) T[??::4] = shuf(S[??::4], S[??::4], ??);
//
// By default this runs the 2×2 variant (sub-second); pass -full for the
// 4×4 problem of the paper (the original resolved in 33 minutes on a
// 2008 laptop; this implementation takes on the order of a minute).
//
//	go run ./examples/transpose [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"psketch"
)

func source(n int) (string, psketch.Options) {
	cells := n * n
	ibits := 1
	for (1 << ibits) < n {
		ibits++
	}
	selBits := n * ibits
	var b strings.Builder
	fmt.Fprintf(&b, "int[%d] trans(int[%d] M) {\n", cells, cells)
	fmt.Fprintf(&b, "\tint[%d] T = 0;\n\tint i = 0;\n\twhile (i < %d) {\n\t\tint j = 0;\n\t\twhile (j < %d) {\n", cells, n, n)
	fmt.Fprintf(&b, "\t\t\tT[%d * i + j] = M[%d * j + i];\n\t\t\tj = j + 1;\n\t\t}\n\t\ti = i + 1;\n\t}\n\treturn T;\n}\n\n", n, n)
	fmt.Fprintf(&b, "int[%d] shuf(int[%d] x1, int[%d] x2, bit[%d] b) {\n\tint[%d] s = 0;\n", n, n, n, selBits, n)
	for i := 0; i < n; i++ {
		src := "x1"
		if i >= n/2 {
			src = "x2"
		}
		fmt.Fprintf(&b, "\ts[%d] = %s[(int) b[%d::%d]];\n", i, src, i*ibits, ibits)
	}
	b.WriteString("\treturn s;\n}\n\n")
	fmt.Fprintf(&b, "int[%d] trans_sse(int[%d] M) implements trans {\n", cells, cells)
	fmt.Fprintf(&b, "\tint[%d] S = 0;\n\tint[%d] T = 0;\n", cells, cells)
	fmt.Fprintf(&b, "\trepeat (??) S[??::%d] = shuf(M[??::%d], M[??::%d], ??);\n", n, n, n)
	fmt.Fprintf(&b, "\trepeat (??) T[??::%d] = shuf(S[??::%d], S[??::%d], ??);\n", n, n, n)
	b.WriteString("\treturn T;\n}\n")

	holeW := 1
	for (1 << holeW) < cells {
		holeW++
	}
	return b.String(), psketch.Options{
		IntWidth:  4,
		HoleWidth: holeW,
		LoopBound: n + 1,
		MaxRepeat: n,
	}
}

func main() {
	full := flag.Bool("full", false, "run the 4x4 problem from the paper")
	flag.Parse()
	n := 2
	if *full {
		n = 4
	}
	src, opts := source(n)
	fmt.Printf("synthesizing a %dx%d shuf-based transpose...\n", n, n)
	res, err := psketch.Synthesize(src, "trans_sse", opts)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Resolved {
		log.Fatal("unexpected: sketch did not resolve")
	}
	fmt.Printf("resolved in %d iteration(s), %v:\n\n%s",
		res.Stats.Iterations, res.Stats.Total.Round(1000000), res.Code)
}
