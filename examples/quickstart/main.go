// Quickstart: synthesize a thread-safe counter increment.
//
// The sketch leaves one decision open — whether the increment needs an
// atomic section — and the harness demands that two threads of two
// increments each always leave the counter at 4. The CEGIS loop
// proposes the racy variant, sees a counterexample interleaving from
// the model checker, learns from the projected trace, and converges on
// the atomic one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"psketch"
)

const src = `
int counter = 0;

void Incr() {
	if ({| true | false |}) {
		// A racy read-modify-write...
		int t = counter;
		t = t + 1;
		counter = t;
	} else {
		// ...or an atomic one.
		atomic { counter = counter + 1; }
	}
}

harness void Main() {
	fork (i; 2) {
		Incr();
		Incr();
	}
	assert counter == 4;
}
`

func main() {
	res, err := psketch.Synthesize(src, "Main", psketch.Options{
		Verbose: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Resolved {
		log.Fatal("unexpected: sketch did not resolve")
	}
	fmt.Printf("\nresolved in %d iteration(s), %v:\n\n%s",
		res.Stats.Iterations, res.Stats.Total.Round(1000000), res.Code)
}
