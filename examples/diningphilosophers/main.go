// Dining philosophers (§8.2.5): the chopstick acquisition policy is
// sketched as predicates of the philosopher index and round, guarding
// the two lock statements inside a reorder block. The synthesizer must
// find a policy that avoids deadlock while letting every philosopher
// eat T times — it typically discovers the classic asymmetric solution
// where one philosopher picks up chopsticks in the opposite order.
//
//	go run ./examples/diningphilosophers
package main

import (
	"fmt"
	"log"

	"psketch"
)

const src = `
struct Chop {
	int inuse = 0;
}

Chop[3] sticks;
int[3] eats;

generator bool policy(int p, int t) {
	return {| (!)? (p == ??(2) | p % 2 == ??(1) | (p + t) % 2 == ??(1) | true) |};
}

void phil(int p) {
	int t = 0;
	while (t < 2) {
		Chop left = sticks[p];
		Chop right = sticks[(p + 1) % 3];
		reorder {
			if (policy(p, t)) { lock(left); }
			if (policy(p, t)) { lock(right); }
			if (policy(p, t)) { lock(left); }
			if (policy(p, t)) { lock(right); }
		}
		atomic {
			left.inuse = left.inuse + 1;
			right.inuse = right.inuse + 1;
		}
		atomic {
			assert left.inuse == 1;
			assert right.inuse == 1;
			eats[p] = eats[p] + 1;
		}
		atomic {
			left.inuse = left.inuse - 1;
			right.inuse = right.inuse - 1;
		}
		reorder {
			unlock(left);
			unlock(right);
		}
		t = t + 1;
	}
}

harness void Main() {
	sticks[0] = new Chop();
	sticks[1] = new Chop();
	sticks[2] = new Chop();
	fork (i; 3) {
		phil(i);
	}
	assert eats[0] == 2;
	assert eats[1] == 2;
	assert eats[2] == 2;
}
`

func main() {
	res, err := psketch.Synthesize(src, "Main", psketch.Options{LoopBound: 3})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Resolved {
		log.Fatal("unexpected: sketch did not resolve")
	}
	fmt.Printf("resolved in %d iteration(s), %v:\n\n%s",
		res.Stats.Iterations, res.Stats.Total.Round(1000000), res.Code)
}
